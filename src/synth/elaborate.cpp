#include "synth/elaborate.hpp"

namespace pfd::synth {

using netlist::GateId;
using netlist::GateKind;
using netlist::ModuleTag;
using netlist::Netlist;

GateId BusBuilder::Const0() {
  if (const0_ == netlist::kNoGate) {
    const0_ = nl_->AddGate(GateKind::kConst0, tag_, {}, "dp_zero");
  }
  return const0_;
}

GateId BusBuilder::Const1() {
  if (const1_ == netlist::kNoGate) {
    const1_ = nl_->AddGate(GateKind::kConst1, tag_, {}, "dp_one");
  }
  return const1_;
}

Bus BusBuilder::ConstBus(const BitVec& v) {
  Bus bus(v.width());
  for (int i = 0; i < v.width(); ++i) {
    bus[i] = v.bit(i) ? Const1() : Const0();
  }
  return bus;
}

Bus BusBuilder::Mux2Bus(GateId sel, const Bus& a, const Bus& b,
                        const std::string& name) {
  PFD_CHECK_MSG(a.size() == b.size(), "mux2 bus width mismatch");
  Bus out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out[i] = nl_->AddGate(GateKind::kMux2, tag_, {{sel, a[i], b[i]}},
                          name + "[" + std::to_string(i) + "]");
  }
  return out;
}

Bus BusBuilder::MuxTree(const std::vector<Bus>& inputs, const Bus& select_bits,
                        const std::string& name) {
  PFD_CHECK_MSG(!inputs.empty(), "empty mux tree");
  // Pad to a power of two by replicating the last input; an out-of-range
  // select then resolves to the last input (mirrors rtl::Machine).
  std::size_t padded = 1;
  while (padded < inputs.size()) padded <<= 1;
  const std::size_t levels = select_bits.size();
  PFD_CHECK_MSG((1ULL << levels) >= padded, "not enough select bits");

  std::vector<Bus> layer;
  layer.reserve(padded);
  for (std::size_t i = 0; i < padded; ++i) {
    layer.push_back(inputs[std::min(i, inputs.size() - 1)]);
  }
  // Extend to the full 2^levels leaves (extra select bits still participate
  // so that every select line is a real, faultable control input).
  while (layer.size() < (1ULL << levels)) {
    layer.push_back(layer.back());
  }
  for (std::size_t level = 0; level < levels; ++level) {
    std::vector<Bus> next;
    next.reserve(layer.size() / 2);
    for (std::size_t i = 0; i < layer.size(); i += 2) {
      next.push_back(Mux2Bus(select_bits[level], layer[i], layer[i + 1],
                             name + "_l" + std::to_string(level) + "_" +
                                 std::to_string(i / 2)));
    }
    layer = std::move(next);
  }
  PFD_CHECK(layer.size() == 1);
  return layer[0];
}

Bus BusBuilder::Add(const Bus& a, const Bus& b, GateId cin, GateId* cout,
                    const std::string& name) {
  PFD_CHECK_MSG(a.size() == b.size(), "adder width mismatch");
  Bus sum(a.size());
  GateId carry = cin;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const std::string bit = name + std::to_string(i);
    const GateId axb =
        nl_->AddGate(GateKind::kXor, tag_, {{a[i], b[i]}}, bit + "_axb");
    sum[i] = nl_->AddGate(GateKind::kXor, tag_, {{axb, carry}}, bit + "_s");
    const GateId t1 =
        nl_->AddGate(GateKind::kAnd, tag_, {{a[i], b[i]}}, bit + "_g");
    const GateId t2 =
        nl_->AddGate(GateKind::kAnd, tag_, {{axb, carry}}, bit + "_p");
    carry = nl_->AddGate(GateKind::kOr, tag_, {{t1, t2}}, bit + "_c");
  }
  if (cout != nullptr) *cout = carry;
  return sum;
}

Bus BusBuilder::Sub(const Bus& a, const Bus& b, const std::string& name) {
  Bus nb(b.size());
  for (std::size_t i = 0; i < b.size(); ++i) {
    nb[i] = nl_->AddGate(GateKind::kNot, tag_, {{b[i]}},
                         name + "_nb" + std::to_string(i));
  }
  return Add(a, nb, Const1(), nullptr, name);
}

GateId BusBuilder::Less(const Bus& a, const Bus& b, const std::string& name) {
  Bus nb(b.size());
  for (std::size_t i = 0; i < b.size(); ++i) {
    nb[i] = nl_->AddGate(GateKind::kNot, tag_, {{b[i]}},
                         name + "_nb" + std::to_string(i));
  }
  GateId cout = netlist::kNoGate;
  Add(a, nb, Const1(), &cout, name + "_cmp");
  // carry-out of a + ~b + 1 is 1 iff a >= b.
  return nl_->AddGate(GateKind::kNot, tag_, {{cout}}, name + "_lt");
}

Bus BusBuilder::Mul(const Bus& a, const Bus& b, const std::string& name) {
  PFD_CHECK_MSG(a.size() == b.size(), "multiplier width mismatch");
  const std::size_t w = a.size();
  // Partial product row i: (a << i) & b[i], truncated to w bits.
  auto partial = [&](std::size_t i) {
    Bus pp(w);
    for (std::size_t j = 0; j < w; ++j) {
      if (j < i) {
        pp[j] = Const0();
      } else {
        pp[j] = nl_->AddGate(GateKind::kAnd, tag_, {{a[j - i], b[i]}},
                             name + "_pp" + std::to_string(i) + "_" +
                                 std::to_string(j));
      }
    }
    return pp;
  };
  Bus acc = partial(0);
  for (std::size_t i = 1; i < w; ++i) {
    acc = Add(acc, partial(i), Const0(), nullptr,
              name + "_row" + std::to_string(i));
  }
  return acc;
}

Bus BusBuilder::Bitwise(GateKind kind, const Bus& a, const Bus& b,
                        const std::string& name) {
  PFD_CHECK_MSG(a.size() == b.size(), "bitwise width mismatch");
  Bus out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out[i] = nl_->AddGate(kind, tag_, {{a[i], b[i]}},
                          name + std::to_string(i));
  }
  return out;
}

DatapathNets ElaborateDatapath(Netlist& nl, const rtl::Datapath& dp,
                               std::span<const GateId> reg_load_nets,
                               const std::vector<Bus>& mux_select_nets) {
  PFD_CHECK_MSG(dp.finalized(), "datapath not finalized");
  PFD_CHECK_MSG(reg_load_nets.size() == dp.regs().size(),
                "one load net per register required");
  PFD_CHECK_MSG(mux_select_nets.size() == dp.muxes().size(),
                "one select bus per mux required");
  for (std::size_t m = 0; m < dp.muxes().size(); ++m) {
    PFD_CHECK_MSG(static_cast<int>(mux_select_nets[m].size()) ==
                      dp.muxes()[m].SelectBits(),
                  "mux select bus arity mismatch: " + dp.muxes()[m].name);
  }

  BusBuilder bb(nl, ModuleTag::kDatapath);
  DatapathNets out;
  out.reg_load_net.assign(reg_load_nets.begin(), reg_load_nets.end());

  // 1. Primary inputs.
  for (const rtl::InputPort& ip : dp.inputs()) {
    Bus bus(ip.width);
    for (int b = 0; b < ip.width; ++b) {
      bus[b] = nl.AddInput(ip.name + "[" + std::to_string(b) + "]");
    }
    out.input_bits.push_back(std::move(bus));
  }

  // 2. Register DFFs (created before the combinational network so feedback
  //    references resolve).
  std::vector<Bus> dff(dp.regs().size());
  for (std::size_t r = 0; r < dp.regs().size(); ++r) {
    const rtl::Register& reg = dp.regs()[r];
    dff[r].resize(reg.width);
    for (int b = 0; b < reg.width; ++b) {
      dff[r][b] = nl.AddDff(ModuleTag::kDatapath,
                            reg.name + "[" + std::to_string(b) + "]");
    }
  }
  out.reg_q = dff;

  // 3. Combinational network in RTL evaluation order.
  std::vector<Bus> mux_out(dp.muxes().size());
  std::vector<Bus> fu_out(dp.fus().size());
  auto source_bus = [&](const rtl::Source& s) -> Bus {
    switch (s.kind) {
      case rtl::Source::Kind::kReg: return dff[s.index];
      case rtl::Source::Kind::kMux: return mux_out[s.index];
      case rtl::Source::Kind::kFu: return fu_out[s.index];
      case rtl::Source::Kind::kInput: return out.input_bits[s.index];
      case rtl::Source::Kind::kConst:
        return bb.ConstBus(dp.constants()[s.index].value);
    }
    PFD_CHECK(false);
    return {};
  };
  for (const rtl::EvalNode& node : dp.EvalOrder()) {
    if (node.kind == rtl::EvalNode::Kind::kMux) {
      const rtl::Mux& m = dp.muxes()[node.index];
      std::vector<Bus> ins;
      ins.reserve(m.inputs.size());
      for (const rtl::Source& s : m.inputs) ins.push_back(source_bus(s));
      mux_out[node.index] =
          bb.MuxTree(ins, mux_select_nets[node.index], m.name);
    } else {
      const rtl::Fu& f = dp.fus()[node.index];
      const Bus lhs = source_bus(f.lhs);
      const Bus rhs = source_bus(f.rhs);
      switch (f.kind) {
        case rtl::FuKind::kAdd:
          fu_out[node.index] = bb.Add(lhs, rhs, bb.Const0(), nullptr, f.name);
          break;
        case rtl::FuKind::kSub:
          fu_out[node.index] = bb.Sub(lhs, rhs, f.name);
          break;
        case rtl::FuKind::kLess:
          fu_out[node.index] = {bb.Less(lhs, rhs, f.name)};
          break;
        case rtl::FuKind::kMul:
          fu_out[node.index] = bb.Mul(lhs, rhs, f.name);
          break;
        case rtl::FuKind::kAnd:
          fu_out[node.index] = bb.Bitwise(GateKind::kAnd, lhs, rhs, f.name);
          break;
        case rtl::FuKind::kOr:
          fu_out[node.index] = bb.Bitwise(GateKind::kOr, lhs, rhs, f.name);
          break;
        case rtl::FuKind::kXor:
          fu_out[node.index] = bb.Bitwise(GateKind::kXor, lhs, rhs, f.name);
          break;
      }
    }
  }

  // 4. Register load structure: D = Mux2(load, Q, data).
  for (std::size_t r = 0; r < dp.regs().size(); ++r) {
    const rtl::Register& reg = dp.regs()[r];
    const Bus data = source_bus(reg.input);
    for (int b = 0; b < reg.width; ++b) {
      const GateId d = nl.AddGate(
          GateKind::kMux2, ModuleTag::kDatapath,
          {{reg_load_nets[r], dff[r][b], data[b]}},
          reg.name + "_ld[" + std::to_string(b) + "]");
      nl.ConnectDff(dff[r][b], d);
    }
  }

  // 5. Outputs and FU result nets.
  for (const rtl::OutputPort& op : dp.outputs()) {
    out.output_nets.push_back(source_bus(op.source));
  }
  out.fu_out = fu_out;
  return out;
}

}  // namespace pfd::synth
