#include "synth/dft.hpp"

namespace pfd::synth {

using netlist::GateId;
using netlist::GateKind;
using netlist::ModuleTag;

fault::TestPlan DftSystem::MakeDftPlan(int session) const {
  PFD_CHECK_MSG(session >= 0 && session < sessions, "bad DFT session");
  fault::TestPlan plan = system.MakeEveryCyclePlan();
  plan.pinned.emplace_back(test_mode, Trit::kOne);
  for (std::size_t b = 0; b < session_select.size(); ++b) {
    plan.pinned.emplace_back(session_select[b],
                             ((session >> b) & 1) != 0 ? Trit::kOne
                                                       : Trit::kZero);
  }
  return plan;
}

fault::TestPlan DftSystem::MakeFunctionalPlan() const {
  fault::TestPlan plan = system.MakeTestPlan();
  plan.pinned.emplace_back(test_mode, Trit::kZero);
  for (netlist::GateId g : session_select) {
    plan.pinned.emplace_back(g, Trit::kZero);
  }
  return plan;
}

DftSystem InsertObservationDft(const System& sys) {
  DftSystem dft;
  dft.system = sys;
  System& s = dft.system;
  netlist::Netlist& nl = s.nl;
  const std::size_t before = nl.size();

  // Flatten the functional output bits.
  std::vector<GateId> out_bits;
  std::vector<std::string> out_names;
  for (std::size_t o = 0; o < s.output_nets.size(); ++o) {
    for (std::size_t b = 0; b < s.output_nets[o].size(); ++b) {
      out_bits.push_back(s.output_nets[o][b]);
      out_names.push_back(s.datapath.outputs()[o].name + "[" +
                          std::to_string(b) + "]");
    }
  }
  PFD_CHECK_MSG(!out_bits.empty(), "system has no outputs");

  // Sessions: control lines are observed in groups the size of the output
  // bus. Group g observes lines g*W .. g*W+W-1.
  const std::size_t width = out_bits.size();
  dft.sessions =
      static_cast<int>((s.line_nets.size() + width - 1) / width);
  int sel_bits = 0;
  while ((1 << sel_bits) < dft.sessions) ++sel_bits;

  dft.test_mode = nl.AddInput("test_mode", ModuleTag::kInterface);
  for (int b = 0; b < sel_bits; ++b) {
    dft.session_select.push_back(
        nl.AddInput("test_sel" + std::to_string(b), ModuleTag::kInterface));
  }

  BusBuilder bb(nl, ModuleTag::kInterface);
  for (std::size_t j = 0; j < out_bits.size(); ++j) {
    // The line this bit shows in session g.
    std::vector<Bus> per_session;
    for (int g = 0; g < dft.sessions; ++g) {
      const std::size_t line = static_cast<std::size_t>(g) * width + j;
      per_session.push_back(
          Bus{line < s.line_nets.size() ? s.line_nets[line] : bb.Const0()});
    }
    Bus observed;
    if (per_session.size() == 1) {
      observed = per_session[0];
    } else {
      observed = bb.MuxTree(per_session, dft.session_select,
                            "dft_obs" + std::to_string(j));
    }
    const GateId muxed = nl.AddGate(
        GateKind::kMux2, ModuleTag::kInterface,
        {{dft.test_mode, out_bits[j], observed[0]}},
        "dft_out" + std::to_string(j));
    out_bits[j] = muxed;
  }

  // Re-route the System's output map and the netlist observation ports.
  nl.ClearOutputs();
  std::size_t cursor = 0;
  for (std::size_t o = 0; o < s.output_nets.size(); ++o) {
    for (std::size_t b = 0; b < s.output_nets[o].size(); ++b, ++cursor) {
      s.output_nets[o][b] = out_bits[cursor];
      nl.AddOutput(out_bits[cursor], out_names[cursor]);
    }
  }
  dft.mux_gates_added = nl.size() - before;
  nl.Validate();
  return dft;
}

}  // namespace pfd::synth
