// The design-for-testability alternative the paper argues against.
//
// Section 2 / related work ([5] Bhatia & Jha): "the controller output
// signals are multiplexed with some or all of the datapath primary outputs,
// thus making them directly observable". This module implements that DFT
// insertion so the repository can quantify the trade the paper describes:
// direct observation catches every CFI fault (including all SFR faults) but
// costs interface muxes, an extra test-mode pin, and is simply not possible
// when the pair ships as a hard core.
//
// Implementation: a test_mode input steers per-bit observation muxes that
// replace each observed datapath output bit with a controller line. With
// more control lines than output bits, lines are observed in groups slotted
// over extra "observation sessions" selected by dedicated select pins.
#pragma once

#include "synth/system.hpp"

namespace pfd::synth {

struct DftSystem {
  System system;           // the modified (split-observable) system
  netlist::GateId test_mode = netlist::kNoGate;
  std::vector<netlist::GateId> session_select;  // picks the observed group
  int sessions = 0;        // how many groups of lines exist
  std::size_t mux_gates_added = 0;  // DFT area overhead, in gates

  // Test plan for the DFT mode: observe the (muxed) outputs every cycle
  // with test_mode asserted and the given session selected.
  fault::TestPlan MakeDftPlan(int session) const;
  // Functional-mode plan (test_mode and selects pinned low): behaves like
  // the original system's integrated-test plan.
  fault::TestPlan MakeFunctionalPlan() const;
};

// Builds a copy of `sys` with observation muxes inserted at the datapath
// outputs. The original functional behaviour is preserved when test_mode
// is 0 (enforced by tests).
DftSystem InsertObservationDft(const System& sys);

}  // namespace pfd::synth
