#include "synth/system.hpp"

#include "obs/trace.hpp"

namespace pfd::synth {

using netlist::GateId;
using netlist::ModuleTag;

int System::StateAtCycle(int cycle) const {
  if (cycle <= 0) return -1;  // boot cycle: state unknown
  const int hold = control_spec.HoldState();
  return std::min(cycle - 1, hold);
}

fault::TestPlan System::MakeTestPlan() const {
  fault::TestPlan plan;
  plan.reset = reset;
  for (const Bus& bus : operand_bits) plan.operand_bits.push_back(bus);
  plan.cycles_per_pattern = cycles_per_pattern;
  plan.strobe_cycles = hold_cycles;
  for (const Bus& bus : output_nets) {
    plan.observe.insert(plan.observe.end(), bus.begin(), bus.end());
  }
  return plan;
}

fault::TestPlan System::MakeEveryCyclePlan() const {
  fault::TestPlan plan = MakeTestPlan();
  plan.strobe_cycles.clear();
  for (int c = 1; c < cycles_per_pattern; ++c) {
    plan.strobe_cycles.push_back(c);
  }
  return plan;
}

fault::TestPlan System::MakeControllerPlan() const {
  fault::TestPlan plan;
  plan.reset = reset;
  for (const Bus& bus : operand_bits) plan.operand_bits.push_back(bus);
  plan.cycles_per_pattern = cycles_per_pattern;
  for (int c = 0; c < cycles_per_pattern; ++c) {
    plan.strobe_cycles.push_back(c);
  }
  plan.observe = line_nets;
  return plan;
}

rtl::ControlWord System::ControlWordForState(int state) const {
  rtl::ControlWord cw;
  cw.load = load_map.ExpandLoads(resolved.line_loads[state],
                                 datapath.regs().size());
  cw.select = resolved.selects[state];
  return cw;
}

System BuildSystem(std::string name, const rtl::Datapath& dp,
                   const rtl::ControlSpec& spec,
                   const rtl::LoadLineMap& load_map,
                   const SynthOptions& options,
                   const std::optional<SystemLoop>& loop) {
  obs::Span span("synth.build_system");
  spec.Validate();
  PFD_CHECK_MSG(load_map.NumLines() == spec.num_load_lines,
                "load map / control spec mismatch");
  PFD_CHECK_MSG(static_cast<int>(dp.muxes().size()) == spec.num_muxes,
                "datapath / control spec mux count mismatch");
  for (int m = 0; m < spec.num_muxes; ++m) {
    PFD_CHECK_MSG(spec.mux_select_bits[m] == dp.muxes()[m].SelectBits(),
                  "select width mismatch for mux " + std::to_string(m));
  }

  System sys;
  sys.name = std::move(name);
  sys.options = options;
  sys.datapath = dp;
  sys.control_spec = spec;
  sys.load_map = load_map;

  // Reset is an interface input: not part of the controller fault universe
  // (a fault on the reset pad is not a controller-internal fault).
  sys.reset = sys.nl.AddInput("reset", ModuleTag::kInterface);

  // Controller.
  FsmSpec fsm_spec = BuildFsmSpec(spec, options.fill);
  if (loop) {
    PFD_CHECK_MSG(loop->cond_fu < dp.fus().size(), "bad loop condition FU");
    // While the (registered) condition holds, HOLD branches back into the
    // first computation state.
    fsm_spec.branch = FsmBranch{spec.HoldState(), 1};
  }
  const SynthesizedFsm fsm = SynthesizeFsm(sys.nl, fsm_spec, sys.reset,
                                           options.style, options.encoding);
  sys.cond_sync = fsm.cond_sync;
  sys.has_feedback = loop.has_value();
  sys.lines = MakeControlLines(spec);
  sys.line_nets = fsm.line_nets;
  sys.state_bits = fsm.state_bits;
  sys.resolved = ResolveControl(spec, sys.lines, fsm);

  // Interface map: per-register load nets and per-mux select buses.
  std::vector<GateId> reg_load(dp.regs().size(), netlist::kNoGate);
  std::vector<Bus> mux_sel(dp.muxes().size());
  for (std::size_t li = 0; li < sys.lines.size(); ++li) {
    const ControlLineInfo& info = sys.lines[li];
    if (info.kind == ControlLineInfo::Kind::kLoad) {
      for (std::uint32_t r : load_map.regs_of_line[info.index]) {
        reg_load[r] = fsm.line_nets[li];
      }
    } else {
      Bus& sel = mux_sel[info.index];
      if (static_cast<int>(sel.size()) <= info.bit) {
        sel.resize(info.bit + 1, netlist::kNoGate);
      }
      sel[info.bit] = fsm.line_nets[li];
    }
  }
  for (std::size_t r = 0; r < reg_load.size(); ++r) {
    PFD_CHECK_MSG(reg_load[r] != netlist::kNoGate,
                  "register not covered by any load line: " +
                      dp.regs()[r].name);
  }

  // Datapath.
  const DatapathNets nets =
      ElaborateDatapath(sys.nl, dp, reg_load, mux_sel);
  if (loop) {
    // Close the feedback: the controller's synchronizer samples the
    // comparator's LSB each cycle.
    PFD_CHECK_MSG(fsm.cond_sync != netlist::kNoGate,
                  "branching FSM missing its synchronizer");
    sys.nl.ConnectDff(fsm.cond_sync, nets.fu_out[loop->cond_fu][0]);
  }
  sys.operand_bits = nets.input_bits;
  sys.output_nets = nets.output_nets;
  for (std::size_t o = 0; o < dp.outputs().size(); ++o) {
    const Bus& bus = nets.output_nets[o];
    for (std::size_t b = 0; b < bus.size(); ++b) {
      sys.nl.AddOutput(bus[b],
                       dp.outputs()[o].name + "[" + std::to_string(b) + "]");
    }
  }

  // Gated clocks: one group per load line, covering all bits of all
  // registers that line drives.
  for (int l = 0; l < load_map.NumLines(); ++l) {
    std::vector<GateId> dffs;
    for (std::uint32_t r : load_map.regs_of_line[l]) {
      dffs.insert(dffs.end(), nets.reg_q[r].begin(), nets.reg_q[r].end());
    }
    // Find the net of this load line.
    for (std::size_t li = 0; li < sys.lines.size(); ++li) {
      if (sys.lines[li].kind == ControlLineInfo::Kind::kLoad &&
          sys.lines[li].index == static_cast<std::uint32_t>(l)) {
        sys.clock_gates.emplace_back(fsm.line_nets[li], std::move(dffs));
        break;
      }
    }
  }

  // Schedule geometry: boot + one cycle per state + one extra HOLD cycle.
  // While-loop systems get room for extra iterations (one pass through
  // CS1..HOLD per iteration) and are strobed at the very end of the budget.
  sys.cycles_per_pattern = spec.NumStates() + 2;
  if (loop) {
    sys.loop_extra_cycles =
        loop->test_iterations * (spec.NumStates() - 1);
    sys.cycles_per_pattern += sys.loop_extra_cycles;
  }
  sys.hold_cycles = {sys.cycles_per_pattern - 2, sys.cycles_per_pattern - 1};

  sys.nl.Validate();
  return sys;
}

}  // namespace pfd::synth
