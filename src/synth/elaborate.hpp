// Structural elaboration of the RTL datapath into gates.
//
// Implementation choices (mirrored exactly by rtl::Machine so that RTL and
// gate level are cycle-accurate equivalents — tests/integration enforces
// this):
//   * registers: per-bit load mux (Q feedback) in front of a DFF; the
//     register group is additionally reported for gated-clock power
//     accounting;
//   * n-way muxes: balanced Mux2 trees, inputs padded to a power of two by
//     replicating the last input (so an out-of-range faulty select resolves
//     to the last input, as in rtl::Machine);
//   * ADD/SUB/LT: ripple-carry (SUB/LT via two's complement; LT = !carry);
//   * MUL: truncated array multiplier (result mod 2^w);
//   * AND/OR/XOR: per-bit gates.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "rtl/datapath.hpp"

namespace pfd::synth {

using Bus = std::vector<netlist::GateId>;  // LSB first

struct DatapathNets {
  std::vector<Bus> input_bits;   // per rtl InputPort
  std::vector<Bus> reg_q;        // per register: DFF outputs
  std::vector<Bus> fu_out;       // per functional unit: result nets
  std::vector<Bus> output_nets;  // per rtl OutputPort
  // Per register: the load net that gates it (echo of the argument), for
  // clock-gating registration.
  std::vector<netlist::GateId> reg_load_net;
};

// Elaborates `dp` into `nl` (gates tagged kDatapath). `reg_load_nets` gives
// the controller net driving each register's load; `mux_select_nets` gives
// each mux's select bit nets (LSB first, arity = Mux::SelectBits()).
DatapathNets ElaborateDatapath(
    netlist::Netlist& nl, const rtl::Datapath& dp,
    std::span<const netlist::GateId> reg_load_nets,
    const std::vector<Bus>& mux_select_nets);

// --- reusable word-level gate builders (used by tests as well) -------------

class BusBuilder {
 public:
  BusBuilder(netlist::Netlist& nl, netlist::ModuleTag tag)
      : nl_(&nl), tag_(tag) {}

  netlist::GateId Const0();
  netlist::GateId Const1();
  Bus ConstBus(const BitVec& v);

  Bus Mux2Bus(netlist::GateId sel, const Bus& a, const Bus& b,
              const std::string& name);
  // inputs[i] selected by select value i (see header comment for padding).
  Bus MuxTree(const std::vector<Bus>& inputs, const Bus& select_bits,
              const std::string& name);

  // Ripple-carry add; returns sum, sets *cout if non-null.
  Bus Add(const Bus& a, const Bus& b, netlist::GateId cin,
          netlist::GateId* cout, const std::string& name);
  Bus Sub(const Bus& a, const Bus& b, const std::string& name);
  // 1-bit unsigned a < b.
  netlist::GateId Less(const Bus& a, const Bus& b, const std::string& name);
  Bus Mul(const Bus& a, const Bus& b, const std::string& name);
  Bus Bitwise(netlist::GateKind kind, const Bus& a, const Bus& b,
              const std::string& name);

 private:
  netlist::Netlist* nl_;
  netlist::ModuleTag tag_;
  netlist::GateId const0_ = netlist::kNoGate;
  netlist::GateId const1_ = netlist::kNoGate;
};

}  // namespace pfd::synth
