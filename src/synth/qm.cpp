#include "synth/qm.hpp"

#include <algorithm>
#include <bit>
#include <set>

#include "base/error.hpp"
#include "obs/trace.hpp"

namespace pfd::synth {

void TwoLevelSpec::Validate() const {
  PFD_CHECK_MSG(num_inputs >= 0 && num_inputs <= 20,
                "two-level spec input count out of range");
  PFD_CHECK_MSG(table.size() == (1ULL << num_inputs),
                "two-level spec table size mismatch");
}

bool EvalSop(std::span<const Cube> cubes, std::uint32_t input) {
  for (const Cube& c : cubes) {
    if (c.Covers(input)) return true;
  }
  return false;
}

std::size_t LiteralCount(std::span<const Cube> cubes) {
  std::size_t n = 0;
  for (const Cube& c : cubes) n += std::popcount(c.mask);
  return n;
}

namespace {

struct CubeLess {
  bool operator()(const Cube& a, const Cube& b) const {
    return a.mask != b.mask ? a.mask < b.mask : a.value < b.value;
  }
};

// All prime implicants of ON u DC, by iterated pairwise merging.
// `merge_rounds` reports how many merge generations ran (cube size classes
// visited), for the obs counters.
std::vector<Cube> PrimeImplicants(const std::vector<std::uint32_t>& care,
                                  std::uint32_t full_mask,
                                  std::uint64_t& merge_rounds) {
  std::set<Cube, CubeLess> current;
  for (std::uint32_t m : care) current.insert({full_mask, m});

  std::vector<Cube> primes;
  while (!current.empty()) {
    ++merge_rounds;
    std::set<Cube, CubeLess> next;
    std::set<Cube, CubeLess> merged;
    std::vector<Cube> cur(current.begin(), current.end());
    for (std::size_t i = 0; i < cur.size(); ++i) {
      for (std::size_t j = i + 1; j < cur.size(); ++j) {
        if (cur[i].mask != cur[j].mask) continue;
        const std::uint32_t diff = cur[i].value ^ cur[j].value;
        if (std::popcount(diff) != 1) continue;
        next.insert({cur[i].mask & ~diff, cur[i].value & ~diff});
        merged.insert(cur[i]);
        merged.insert(cur[j]);
      }
    }
    for (const Cube& c : cur) {
      if (!merged.count(c)) primes.push_back(c);
    }
    current = std::move(next);
  }
  return primes;
}

}  // namespace

std::vector<Cube> MinimizeSop(const TwoLevelSpec& spec) {
  spec.Validate();
  obs::Span span("synth.qm.minimize",
                 obs::Span::Args({{"inputs", spec.num_inputs}}));
  std::uint64_t merge_rounds = 0;
  std::uint64_t cover_iterations = 0;
  const std::uint32_t n = 1u << spec.num_inputs;
  const std::uint32_t full_mask = n - 1;

  std::vector<std::uint32_t> on, care;
  for (std::uint32_t m = 0; m < n; ++m) {
    if (spec.table[m] == Trit::kOne) {
      on.push_back(m);
      care.push_back(m);
    } else if (spec.table[m] == Trit::kX) {
      care.push_back(m);
    }
  }
  if (on.empty()) return {};
  if (care.size() == n) return {Cube{0, 0}};  // tautology (with DC fill)

  std::vector<Cube> primes = PrimeImplicants(care, full_mask, merge_rounds);
  // Deterministic order: fewer literals first (bigger cubes preferred),
  // then lexicographic.
  std::sort(primes.begin(), primes.end(), [](const Cube& a, const Cube& b) {
    const int pa = std::popcount(a.mask);
    const int pb = std::popcount(b.mask);
    if (pa != pb) return pa < pb;
    if (a.mask != b.mask) return a.mask < b.mask;
    return a.value < b.value;
  });

  // Cover the ON-set: essential primes, then greedy by uncovered count.
  std::vector<Cube> cover;
  std::vector<bool> covered(on.size(), false);

  // Essential primes: an ON minterm covered by exactly one prime.
  std::vector<int> only_prime(on.size(), -1);
  for (std::size_t m = 0; m < on.size(); ++m) {
    int found = -1;
    for (std::size_t p = 0; p < primes.size(); ++p) {
      if (primes[p].Covers(on[m])) {
        if (found >= 0) {
          found = -2;
          break;
        }
        found = static_cast<int>(p);
      }
    }
    only_prime[m] = found;
  }
  std::vector<bool> picked(primes.size(), false);
  for (std::size_t m = 0; m < on.size(); ++m) {
    if (only_prime[m] >= 0 && !picked[only_prime[m]]) {
      picked[only_prime[m]] = true;
      cover.push_back(primes[only_prime[m]]);
    }
  }
  auto mark_covered = [&] {
    for (std::size_t m = 0; m < on.size(); ++m) {
      if (!covered[m] && EvalSop(cover, on[m])) covered[m] = true;
    }
  };
  mark_covered();

  for (;;) {
    ++cover_iterations;
    std::size_t uncovered = 0;
    for (bool c : covered) {
      if (!c) ++uncovered;
    }
    if (uncovered == 0) break;
    // Greedy: prime covering the most uncovered ON minterms (ties resolved
    // by the deterministic sort order above).
    std::size_t best = primes.size();
    std::size_t best_count = 0;
    for (std::size_t p = 0; p < primes.size(); ++p) {
      if (picked[p]) continue;
      std::size_t count = 0;
      for (std::size_t m = 0; m < on.size(); ++m) {
        if (!covered[m] && primes[p].Covers(on[m])) ++count;
      }
      if (count > best_count) {
        best_count = count;
        best = p;
      }
    }
    PFD_CHECK_MSG(best < primes.size(), "QM cover failed to progress");
    picked[best] = true;
    cover.push_back(primes[best]);
    mark_covered();
  }
  if (obs::Enabled()) {
    obs::Registry& reg = obs::Registry::Global();
    reg.GetCounter("qm.minimize_calls").Add(1);
    reg.GetCounter("qm.merge_rounds").Add(merge_rounds);
    reg.GetCounter("qm.primes").Add(primes.size());
    reg.GetCounter("qm.cover_iterations").Add(cover_iterations);
  }
  return cover;
}

}  // namespace pfd::synth
