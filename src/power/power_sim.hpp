// Power simulation drivers.
//
// Two measurement modes, matching the paper's experiments:
//   * EstimatePowerMonteCarlo — "the faulty circuit is simulated for random
//     data until the power converges" (Section 5): independent batches of 64
//     random patterns ride the simulator lanes until the 95% confidence
//     half-width of the mean batch power drops below a relative tolerance.
//     Batches fan out across worker threads (MonteCarloConfig::exec): batch
//     b draws from a private RNG stream derived from (seed, b) via
//     exec::ShardSeed and starts from one shared warmed-up machine state,
//     and per-batch statistics fold in batch order via RunningStat::Merge —
//     so the estimate is bit-identical for every thread count.
//   * MeasureTestSetPower — power over a fixed TPGR test set, described by
//     the same fault::StimulusSpec the fault engines consume (Table 3 uses
//     three 1200-pattern sets). Serial by construction: the TPGR stream is
//     one sequential whole.
//
// Robustness (pfd::guard): both modes honour guard::Limits (or an external
// shared checker) at batch boundaries and always return a PowerResult — a
// deadline, cancellation, or budget trip yields the estimate over the
// batches that completed, with run_status saying why and which batch
// indices made it. A throwing Monte Carlo batch is quarantined, retried
// once, and (if still failing) excluded from the fold as a listed
// FailedUnit. Failpoints: "power.mc_batch", "power.test_set_batch" (both
// fire before the batch mutates any state, so a retried batch reproduces
// the uninjected result exactly).
//
// Both accept an optional stuck-at fault to inject, so the same code path
// produces the fault-free baseline and every faulty measurement.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "exec/exec.hpp"
#include "fault/fault.hpp"
#include "fault/fault_sim.hpp"
#include "guard/guard.hpp"
#include "power/power_model.hpp"
#include "tpg/lfsr.hpp"

namespace pfd::power {

struct MonteCarloConfig {
  std::uint64_t seed = 0xC0FFEE5EEDULL;
  int min_batches = 8;     // 64 patterns each
  int max_batches = 512;
  double rel_tol = 0.004;  // stop when CI95 half-width / mean < rel_tol
  // Count hazard (glitch) transitions with unit-delay timing instead of the
  // zero-delay single-transition model. Slower by roughly the logic depth.
  bool unit_delay = false;
  // Worker threads for the batch fan-out; a performance knob only — the
  // result is bit-identical for every thread count.
  exec::Options exec;
  // Optional injected shared pool; nullptr builds a private pool from
  // `exec`. Scheduling only — results are bit-identical either way. Not
  // owned.
  exec::Pool* pool = nullptr;
  // Cooperative limits for this run; ignored when `checker` is set.
  guard::Limits limits;
  // Optional external checker for callers pooling one budget across
  // several engine runs. Not owned.
  guard::Checker* checker = nullptr;
};

struct PowerResult {
  PowerBreakdown breakdown;
  // Convergence diagnostics (Monte Carlo only; zero otherwise).
  double ci95_rel = 0.0;
  int batches = 0;
  std::uint64_t patterns = 0;
  // Partial-result contract: kOk for a clean run; otherwise the trip code
  // or kPartialFailure, the completed batch indices, and any quarantined
  // batches that failed their retry.
  guard::RunStatus run_status;
};

// Monte Carlo average power with the (optional) faults injected in every
// lane. Multiple simultaneous faults are supported because the Section-4
// worst-case experiment composes many control-line effects at once.
PowerResult EstimatePowerMonteCarlo(const netlist::Netlist& nl,
                                    const fault::TestPlan& plan,
                                    const PowerModel& model,
                                    std::span<const fault::StuckFault> faults,
                                    const MonteCarloConfig& config);

inline PowerResult EstimatePowerMonteCarlo(const netlist::Netlist& nl,
                                           const fault::TestPlan& plan,
                                           const PowerModel& model,
                                           const MonteCarloConfig& config) {
  return EstimatePowerMonteCarlo(nl, plan, model, {}, config);
}

// Hard ceiling on 64-lane test-set batches (and so on the pattern count:
// 64 million patterns). Far above any real campaign — Table 3 uses 1200
// patterns — so its only job is to reject corrupted or overflow-adjacent
// pattern counts up front with a clear error instead of letting the batch
// arithmetic misbehave near INT_MAX.
inline constexpr std::int64_t kMaxTestSetBatches = 1'000'000;

// Measurement knobs for a fixed-test-set run. The test set itself — plan,
// TPGR seed, pattern count — arrives as a fault::StimulusSpec, the same
// bundle the fault engines consume, so one campaign's stimulus is built
// once and dealt to both detection and power measurement without drifting.
struct TestSetPowerConfig {
  bool unit_delay = false;
  // Cooperative limits for this run; ignored when `checker` is set.
  guard::Limits limits;
  guard::Checker* checker = nullptr;  // not owned
};

// Average power over the fixed test set `stimulus` describes (Table 3 uses
// three 1200-pattern sets seeded with tpg::kTestSetSeed1..3).
PowerResult MeasureTestSetPower(const netlist::Netlist& nl,
                                const fault::StimulusSpec& stimulus,
                                const PowerModel& model,
                                std::span<const fault::StuckFault> faults,
                                const TestSetPowerConfig& config);

}  // namespace pfd::power
