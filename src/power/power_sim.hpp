// Power simulation drivers.
//
// Two measurement modes, matching the paper's experiments:
//   * EstimatePowerMonteCarlo — "the faulty circuit is simulated for random
//     data until the power converges" (Section 5): batches of 64 random
//     patterns ride the simulator lanes until the 95% confidence half-width
//     of the mean batch power drops below a relative tolerance.
//   * MeasureTestSetPower — power over a fixed TPGR test set of given seed
//     and length (Table 3 uses three 1200-pattern sets).
//
// Both accept an optional stuck-at fault to inject, so the same code path
// produces the fault-free baseline and every faulty measurement.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "fault/fault.hpp"
#include "fault/fault_sim.hpp"
#include "power/power_model.hpp"

namespace pfd::power {

struct MonteCarloConfig {
  std::uint64_t seed = 0xC0FFEE5EEDULL;
  int min_batches = 8;     // 64 patterns each
  int max_batches = 512;
  double rel_tol = 0.004;  // stop when CI95 half-width / mean < rel_tol
  // Count hazard (glitch) transitions with unit-delay timing instead of the
  // zero-delay single-transition model. Slower by roughly the logic depth.
  bool unit_delay = false;
};

struct PowerResult {
  PowerBreakdown breakdown;
  // Convergence diagnostics (Monte Carlo only; zero otherwise).
  double ci95_rel = 0.0;
  int batches = 0;
  std::uint64_t patterns = 0;
};

// Monte Carlo average power with the (optional) faults injected in every
// lane. Multiple simultaneous faults are supported because the Section-4
// worst-case experiment composes many control-line effects at once.
PowerResult EstimatePowerMonteCarlo(const netlist::Netlist& nl,
                                    const fault::TestPlan& plan,
                                    const PowerModel& model,
                                    std::span<const fault::StuckFault> faults,
                                    const MonteCarloConfig& config);

inline PowerResult EstimatePowerMonteCarlo(const netlist::Netlist& nl,
                                           const fault::TestPlan& plan,
                                           const PowerModel& model,
                                           const MonteCarloConfig& config) {
  return EstimatePowerMonteCarlo(nl, plan, model, {}, config);
}

// Average power over a fixed pseudorandom test set (TPGR seed + length).
PowerResult MeasureTestSetPower(const netlist::Netlist& nl,
                                const fault::TestPlan& plan,
                                const PowerModel& model,
                                std::span<const fault::StuckFault> faults,
                                std::uint32_t tpgr_seed, int num_patterns,
                                bool unit_delay = false);

}  // namespace pfd::power
