#include "power/power_model.hpp"

namespace pfd::power {

using netlist::GateId;
using netlist::GateKind;
using netlist::ModuleTag;

PowerModel::PowerModel(const netlist::Netlist& nl, const TechModel& tech)
    : nl_(&nl), tech_(tech) {
  const std::vector<std::uint32_t> fanout = nl.FanoutCounts();
  toggle_energy_j_.resize(nl.size());
  gated_.assign(nl.size(), 0);
  for (GateId g = 0; g < nl.size(); ++g) {
    double cap = tech.drain_cap_f + tech.wire_cap_f +
                 fanout[g] * tech.input_cap_f;
    if (nl.gate(g).kind == GateKind::kDff) {
      cap += tech.dff_q_extra_cap_f;
    }
    toggle_energy_j_[g] = 0.5 * cap * tech.vdd_v * tech.vdd_v;
  }
}

void PowerModel::AddClockGate(GateId enable_net, std::vector<GateId> dffs) {
  for (GateId d : dffs) {
    PFD_CHECK_MSG(nl_->gate(d).kind == GateKind::kDff,
                  "clock gate member is not a DFF");
    PFD_CHECK_MSG(!gated_[d], "DFF in two clock-gate groups");
    gated_[d] = 1;
  }
  clock_gates_.push_back({enable_net, std::move(dffs)});
}

PowerComputeResult PowerModel::Compute(const logicsim::Simulator& sim,
                                       std::uint64_t machine_cycles) const {
  if (machine_cycles == 0) {
    // A guard can legitimately trip a run before its first cycle; report
    // the empty accumulation as a partial result, never abort.
    PowerComputeResult out;
    out.status.code = guard::StatusCode::kPartialFailure;
    out.status.message = "no simulated machine-cycles to average over";
    return out;
  }
  double energy_by_module[3] = {0.0, 0.0, 0.0};
  // Switching (toggle) energy.
  for (GateId g = 0; g < nl_->size(); ++g) {
    const std::uint64_t t = sim.ToggleCount(g);
    if (t == 0) continue;
    energy_by_module[static_cast<int>(nl_->gate(g).module)] +=
        static_cast<double>(t) * toggle_energy_j_[g];
  }
  // Clock energy: ungated DFFs every cycle, gated groups per enabled cycle.
  for (GateId g = 0; g < nl_->size(); ++g) {
    if (nl_->gate(g).kind != GateKind::kDff || gated_[g]) continue;
    energy_by_module[static_cast<int>(nl_->gate(g).module)] +=
        static_cast<double>(machine_cycles) * tech_.dff_clock_energy_j;
  }
  for (const ClockGate& cg : clock_gates_) {
    const double enabled_cycles = static_cast<double>(sim.DutyCount(cg.enable));
    for (GateId d : cg.dffs) {
      energy_by_module[static_cast<int>(nl_->gate(d).module)] +=
          enabled_cycles * tech_.dff_clock_energy_j;
    }
  }
  const double seconds =
      static_cast<double>(machine_cycles) / tech_.clock_hz;
  PowerComputeResult out;
  out.breakdown.datapath_uw = energy_by_module[0] / seconds * 1e6;
  out.breakdown.controller_uw = energy_by_module[1] / seconds * 1e6;
  out.breakdown.interface_uw = energy_by_module[2] / seconds * 1e6;
  out.breakdown.total_uw = out.breakdown.datapath_uw +
                           out.breakdown.controller_uw +
                           out.breakdown.interface_uw;
  return out;
}

}  // namespace pfd::power
