// Dynamic power model.
//
// Zero-delay switching-activity model over the gate-level netlist, in the
// spirit of the 0.8 µm CMOS standard-cell library (COMPASS VSC450) the paper
// used:
//
//   * every 0->1 / 1->0 transition of a net dissipates E = 1/2 * C_net * Vdd^2,
//     where C_net = driver drain capacitance + wire capacitance + the sum of
//     the input-pin capacitances it fans out to;
//   * every *ungated* DFF (the controller state register) dissipates a fixed
//     clock-pin energy each cycle;
//   * datapath registers use the gated-clock scheme the paper describes
//     ("such a fault undermines the gated clock scheme used for low power
//     design"): their clock-pin energy is charged only on cycles when their
//     load line is 1. An SFR fault that causes extra loads therefore costs
//     clock energy even when it merely re-loads identical data — exactly the
//     guaranteed power increase of Section 4.
//
// Power is reported in µW, split by module tag: the paper's tables and
// figures all report *datapath* power ("power consumed by the datapath when
// driven by a controller that has an SFR fault").
//
// Constants are calibrated (see TechModel::Vsc450) so that the 4-bit Diffeq
// datapath lands in the paper's ~1.7 mW range at Vdd = 5 V, f = 20 MHz.
// Absolute calibration does not affect the reproduction's conclusions; all
// detection decisions use percentage change.
#pragma once

#include <cstdint>
#include <vector>

#include "guard/guard.hpp"
#include "logicsim/simulator.hpp"
#include "netlist/netlist.hpp"

namespace pfd::power {

struct TechModel {
  double vdd_v = 5.0;
  double clock_hz = 20e6;
  double input_cap_f = 30e-15;    // per fanin pin
  double drain_cap_f = 15e-15;    // per driver
  double wire_cap_f = 20e-15;     // per net (lumped)
  double dff_q_extra_cap_f = 60e-15;   // extra internal cap on a Q toggle
  double dff_clock_energy_j = 1.0e-12;  // per clocked DFF per cycle (incl.
                                        // local clock buffering)

  // Defaults modelled after a 0.8 micron, 5 V standard-cell process.
  static TechModel Vsc450() { return {}; }
};

struct PowerBreakdown {
  double datapath_uw = 0.0;
  double controller_uw = 0.0;
  double interface_uw = 0.0;
  double total_uw = 0.0;
};

// Compute() result: the breakdown plus a status. A zero-cycle request —
// which happens legitimately when a guard deadline or cancellation trips
// before the first simulated cycle of a run — yields kPartialFailure with
// an all-zero breakdown instead of aborting the process.
struct PowerComputeResult {
  PowerBreakdown breakdown;
  guard::Status status;

  bool ok() const { return status.ok(); }
};

// Precomputes per-net toggle energy; converts a simulator's accumulated
// toggle counts into average power.
class PowerModel {
 public:
  PowerModel(const netlist::Netlist& nl, const TechModel& tech);

  const TechModel& tech() const { return tech_; }

  // Registers a gated-clock group: the DFFs are clocked only on cycles when
  // `enable_net` is 1 (their clock energy is charged per enabled
  // lane-cycle). DFFs not in any group are clocked every cycle.
  void AddClockGate(netlist::GateId enable_net,
                    std::vector<netlist::GateId> dffs);

  // Energy (J) dissipated by one output toggle of gate g.
  double ToggleEnergy(netlist::GateId g) const { return toggle_energy_j_[g]; }

  // Converts accumulated toggle counts into average power. `machine_cycles`
  // is the total number of simulated machine-cycles the counts cover (lanes
  // x cycles for a pattern-parallel run); the per-machine-cycle
  // normalization and the lane-summed ToggleCount/DutyCount inputs agree by
  // construction — N patterns simulated 64-wide report the same average
  // power as the same N patterns simulated one lane at a time.
  // machine_cycles == 0 returns a kPartialFailure status (see
  // PowerComputeResult) rather than dividing by zero or aborting.
  PowerComputeResult Compute(const logicsim::Simulator& sim,
                             std::uint64_t machine_cycles) const;

 private:
  struct ClockGate {
    netlist::GateId enable;
    std::vector<netlist::GateId> dffs;
  };

  const netlist::Netlist* nl_;
  TechModel tech_;
  std::vector<double> toggle_energy_j_;
  std::vector<ClockGate> clock_gates_;
  std::vector<std::uint8_t> gated_;  // per gate: 1 if DFF is in some group
};

}  // namespace pfd::power
