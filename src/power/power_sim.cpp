#include "power/power_sim.hpp"

#include <array>
#include <vector>

#include "base/rng.hpp"
#include "base/stats.hpp"
#include "obs/trace.hpp"
#include "tpg/lfsr.hpp"

namespace pfd::power {

using netlist::GateId;

namespace {

// Drives one batch of 64 per-lane operand values onto the input bit gates.
void DriveLaneOperands(
    logicsim::Simulator& sim, const fault::TestPlan& plan,
    const std::vector<std::vector<std::uint32_t>>& lane_values) {
  for (const auto& [gate, value] : plan.pinned) {
    sim.SetInputAllLanes(gate, value);
  }
  for (std::size_t op = 0; op < plan.operand_bits.size(); ++op) {
    const auto& bits = plan.operand_bits[op];
    for (std::size_t b = 0; b < bits.size(); ++b) {
      sim.SetInput(bits[b],
                   tpg::PackBit(lane_values[op], static_cast<int>(b)));
    }
  }
}

// Runs one batch: 64 lanes, each carrying an independent pattern, through
// one full schedule of the test plan.
void RunBatch(logicsim::Simulator& sim, const fault::TestPlan& plan,
              const std::vector<std::vector<std::uint32_t>>& lane_values) {
  DriveLaneOperands(sim, plan, lane_values);
  for (int c = 0; c < plan.cycles_per_pattern; ++c) {
    if (plan.reset != netlist::kNoGate) {
      sim.SetInputAllLanes(plan.reset, c == 0 ? Trit::kOne : Trit::kZero);
    }
    sim.Step();
  }
}

// Fills all 64 lanes of every operand from `rng`.
void FillRandomLanes(Rng& rng, const fault::TestPlan& plan,
                     std::vector<std::vector<std::uint32_t>>& lane_values) {
  for (std::size_t op = 0; op < plan.operand_bits.size(); ++op) {
    const int width = static_cast<int>(plan.operand_bits[op].size());
    for (int lane = 0; lane < 64; ++lane) {
      lane_values[op][lane] = rng.Bits(width);
    }
  }
}

struct BreakdownAccumulator {
  double datapath = 0, controller = 0, interface = 0, total = 0;
  int n = 0;
  void Add(const PowerBreakdown& b) {
    datapath += b.datapath_uw;
    controller += b.controller_uw;
    interface += b.interface_uw;
    total += b.total_uw;
    ++n;
  }
  PowerBreakdown Mean() const {
    PFD_CHECK(n > 0);
    return {datapath / n, controller / n, interface / n, total / n};
  }
};

// Sum of this run's per-gate switching counts — the quantity the power
// model integrates. Only called when the obs registry is enabled.
std::uint64_t TotalToggles(const logicsim::Simulator& sim) {
  std::uint64_t total = 0;
  for (std::size_t g = 0; g < sim.nl().size(); ++g) {
    total += sim.ToggleCount(static_cast<netlist::GateId>(g));
  }
  return total;
}

}  // namespace

// Parallel scheme: one base simulator is warmed up with a throwaway batch
// (stream 0) to flush the power-up X state; measured batch b then copies
// that machine state, draws its 64 patterns from private stream b+1
// (exec::ShardSeed), and writes its PowerBreakdown into slot b. Batches are
// issued in waves of ~thread-count; after each wave, per-batch single-sample
// stats fold into the running estimate in batch order (RunningStat::Merge)
// and the convergence rule is evaluated at each fold — so the stopping
// batch, the mean, and the CI are a pure function of the config, never of
// the thread count or the wave split (a converged wave's surplus batches
// are discarded, not folded).
PowerResult EstimatePowerMonteCarlo(const netlist::Netlist& nl,
                                    const fault::TestPlan& plan,
                                    const PowerModel& model,
                                    std::span<const fault::StuckFault> faults,
                                    const MonteCarloConfig& config) {
  obs::Span span("power.monte_carlo",
                 obs::Span::Args(
                     {{"faults", static_cast<std::int64_t>(faults.size())},
                      {"max_batches", config.max_batches}}));
  logicsim::Simulator base(nl);
  for (const fault::StuckFault& f : faults) {
    fault::InjectFault(base, f, ~0ULL);
  }
  base.EnableToggleCounting(true);
  base.EnableUnitDelay(config.unit_delay);

  const std::size_t n_ops = plan.operand_bits.size();
  const std::uint64_t batch_cycles =
      64ULL * static_cast<std::uint64_t>(plan.cycles_per_pattern);
  const std::uint64_t det_seed = config.exec.deterministic_seed;

  // Warm-up batch (stream 0): flushes power-up X state so every measured
  // batch starts from the same steady-state machine.
  {
    std::vector<std::vector<std::uint32_t>> lane_values(
        n_ops, std::vector<std::uint32_t>(64));
    Rng rng(exec::ShardSeed(config.seed, det_seed, 0));
    FillRandomLanes(rng, plan, lane_values);
    RunBatch(base, plan, lane_values);
  }

  exec::Pool pool(config.exec);
  std::vector<PowerBreakdown> results(
      static_cast<std::size_t>(config.max_batches));

  RunningStat datapath_stat;
  BreakdownAccumulator acc;
  int used = 0;       // batches folded into the estimate
  int computed = 0;   // batches simulated (>= used after convergence)
  bool converged = false;
  while (!converged && computed < config.max_batches) {
    const int wave =
        std::min(config.max_batches - computed,
                 computed == 0 ? std::max(config.min_batches, pool.threads())
                               : pool.threads());
    pool.ParallelFor(static_cast<std::size_t>(wave), [&](std::size_t k) {
      const int b = computed + static_cast<int>(k);
      logicsim::Simulator sim = base;  // copy of the warmed machine
      sim.ResetToggleCounts();
      std::vector<std::vector<std::uint32_t>> lane_values(
          n_ops, std::vector<std::uint32_t>(64));
      Rng rng(exec::ShardSeed(config.seed, det_seed,
                              static_cast<std::uint64_t>(b) + 1));
      FillRandomLanes(rng, plan, lane_values);
      RunBatch(sim, plan, lane_values);
      results[static_cast<std::size_t>(b)] = model.Compute(sim, batch_cycles);
      if (obs::Enabled()) {
        obs::Registry::Global().GetCounter("power.toggles")
            .Add(TotalToggles(sim));
      }
    });
    computed += wave;
    // Ordered reduction: fold batch by batch, stop at the first batch where
    // the convergence rule fires.
    for (int b = used; b < computed && !converged; ++b) {
      const PowerBreakdown& pb = results[static_cast<std::size_t>(b)];
      RunningStat sample;
      sample.Add(pb.datapath_uw);
      datapath_stat.Merge(sample);
      acc.Add(pb);
      ++used;
      if (used >= config.min_batches &&
          datapath_stat.RelativeHalfWidth95() < config.rel_tol) {
        converged = true;
      }
    }
  }

  if (obs::Enabled()) {
    obs::Registry& reg = obs::Registry::Global();
    reg.GetCounter("power.mc_runs").Add(1);
    reg.GetCounter("power.mc_batches")
        .Add(static_cast<std::uint64_t>(used));
    reg.GetCounter(converged ? "power.mc_converged" : "power.mc_maxed_out")
        .Add(1);
    // Convergence state of the most recent run, for -v style probes.
    reg.GetGauge("power.mc_last_ci95_rel")
        .Set(datapath_stat.RelativeHalfWidth95());
  }

  PowerResult result;
  result.breakdown = acc.Mean();
  result.ci95_rel = datapath_stat.RelativeHalfWidth95();
  result.batches = used;
  result.patterns = 64ULL * static_cast<std::uint64_t>(used);
  return result;
}

PowerResult MeasureTestSetPower(const netlist::Netlist& nl,
                                const fault::TestPlan& plan,
                                const PowerModel& model,
                                std::span<const fault::StuckFault> faults,
                                const TestSetPowerConfig& config) {
  PFD_CHECK_MSG(config.patterns > 0, "empty test set");
  obs::Span span("power.test_set",
                 obs::Span::Args(
                     {{"faults", static_cast<std::int64_t>(faults.size())},
                      {"patterns", config.patterns}}));
  logicsim::Simulator sim(nl);
  for (const fault::StuckFault& f : faults) {
    fault::InjectFault(sim, f, ~0ULL);
  }
  sim.EnableToggleCounting(true);
  sim.EnableUnitDelay(config.unit_delay);

  tpg::Tpgr tpgr(config.seed);
  const std::size_t n_ops = plan.operand_bits.size();
  std::vector<std::vector<std::uint32_t>> lane_values(
      n_ops, std::vector<std::uint32_t>(64));

  // The test set length is rounded up to a whole number of 64-lane batches
  // by continuing the TPGR stream (documented in DESIGN.md; identical
  // protocol for baseline and faulty runs, so percentage changes are exact).
  const int batches = (config.patterns + 63) / 64;
  std::uint64_t machine_cycles = 0;
  for (int batch = 0; batch < batches; ++batch) {
    for (int lane = 0; lane < 64; ++lane) {
      for (std::size_t op = 0; op < n_ops; ++op) {
        const int width = static_cast<int>(plan.operand_bits[op].size());
        lane_values[op][lane] = tpgr.NextOperand(width).value();
      }
    }
    RunBatch(sim, plan, lane_values);
    machine_cycles +=
        64ULL * static_cast<std::uint64_t>(plan.cycles_per_pattern);
  }

  if (obs::Enabled()) {
    obs::Registry& reg = obs::Registry::Global();
    reg.GetCounter("power.test_set_runs").Add(1);
    reg.GetCounter("power.test_set_patterns")
        .Add(64ULL * static_cast<std::uint64_t>(batches));
    reg.GetCounter("power.toggles").Add(TotalToggles(sim));
  }

  PowerResult result;
  result.breakdown = model.Compute(sim, machine_cycles);
  result.batches = batches;
  result.patterns = 64ULL * static_cast<std::uint64_t>(batches);
  return result;
}

}  // namespace pfd::power
