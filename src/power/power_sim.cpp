#include "power/power_sim.hpp"

#include <array>
#include <vector>

#include "base/rng.hpp"
#include "base/stats.hpp"
#include "obs/trace.hpp"
#include "tpg/lfsr.hpp"

namespace pfd::power {

using netlist::GateId;

namespace {

// Drives one batch of 64 per-lane operand values onto the input bit gates.
void DriveLaneOperands(
    logicsim::Simulator& sim, const fault::TestPlan& plan,
    const std::vector<std::vector<std::uint32_t>>& lane_values) {
  for (const auto& [gate, value] : plan.pinned) {
    sim.SetInputAllLanes(gate, value);
  }
  for (std::size_t op = 0; op < plan.operand_bits.size(); ++op) {
    const auto& bits = plan.operand_bits[op];
    for (std::size_t b = 0; b < bits.size(); ++b) {
      sim.SetInput(bits[b],
                   tpg::PackBit(lane_values[op], static_cast<int>(b)));
    }
  }
}

// Runs one batch: 64 lanes, each carrying an independent pattern, through
// one full schedule of the test plan.
void RunBatch(logicsim::Simulator& sim, const fault::TestPlan& plan,
              const std::vector<std::vector<std::uint32_t>>& lane_values) {
  DriveLaneOperands(sim, plan, lane_values);
  for (int c = 0; c < plan.cycles_per_pattern; ++c) {
    if (plan.reset != netlist::kNoGate) {
      sim.SetInputAllLanes(plan.reset, c == 0 ? Trit::kOne : Trit::kZero);
    }
    sim.Step();
  }
}

struct BreakdownAccumulator {
  double datapath = 0, controller = 0, interface = 0, total = 0;
  int n = 0;
  void Add(const PowerBreakdown& b) {
    datapath += b.datapath_uw;
    controller += b.controller_uw;
    interface += b.interface_uw;
    total += b.total_uw;
    ++n;
  }
  PowerBreakdown Mean() const {
    PFD_CHECK(n > 0);
    return {datapath / n, controller / n, interface / n, total / n};
  }
};

// Sum of this run's per-gate switching counts — the quantity the power
// model integrates. Only called when the obs registry is enabled.
std::uint64_t TotalToggles(const logicsim::Simulator& sim) {
  std::uint64_t total = 0;
  for (std::size_t g = 0; g < sim.nl().size(); ++g) {
    total += sim.ToggleCount(static_cast<netlist::GateId>(g));
  }
  return total;
}

}  // namespace

PowerResult EstimatePowerMonteCarlo(const netlist::Netlist& nl,
                                    const fault::TestPlan& plan,
                                    const PowerModel& model,
                                    std::span<const fault::StuckFault> faults,
                                    const MonteCarloConfig& config) {
  obs::Span span("power.monte_carlo",
                 obs::Span::Args(
                     {{"faults", static_cast<std::int64_t>(faults.size())},
                      {"max_batches", config.max_batches}}));
  logicsim::Simulator sim(nl);
  for (const fault::StuckFault& f : faults) {
    fault::InjectFault(sim, f, ~0ULL);
  }
  sim.EnableToggleCounting(true);
  sim.EnableUnitDelay(config.unit_delay);

  Rng rng(config.seed);
  const std::size_t n_ops = plan.operand_bits.size();
  std::vector<std::vector<std::uint32_t>> lane_values(
      n_ops, std::vector<std::uint32_t>(64));
  auto fill_random = [&] {
    for (std::size_t op = 0; op < n_ops; ++op) {
      const int width = static_cast<int>(plan.operand_bits[op].size());
      for (int lane = 0; lane < 64; ++lane) {
        lane_values[op][lane] = rng.Bits(width);
      }
    }
  };

  const std::uint64_t batch_cycles =
      64ULL * static_cast<std::uint64_t>(plan.cycles_per_pattern);

  // Warm-up batch: flushes power-up X state so every accumulated batch
  // measures steady-state operation.
  fill_random();
  RunBatch(sim, plan, lane_values);

  RunningStat datapath_stat;
  BreakdownAccumulator acc;
  int batches = 0;
  bool converged = false;
  while (batches < config.max_batches) {
    sim.ResetToggleCounts();
    fill_random();
    RunBatch(sim, plan, lane_values);
    const PowerBreakdown b = model.Compute(sim, batch_cycles);
    if (obs::Enabled()) {
      obs::Registry::Global().GetCounter("power.toggles")
          .Add(TotalToggles(sim));
    }
    datapath_stat.Add(b.datapath_uw);
    acc.Add(b);
    ++batches;
    if (batches >= config.min_batches &&
        datapath_stat.RelativeHalfWidth95() < config.rel_tol) {
      converged = true;
      break;
    }
  }

  if (obs::Enabled()) {
    obs::Registry& reg = obs::Registry::Global();
    reg.GetCounter("power.mc_runs").Add(1);
    reg.GetCounter("power.mc_batches")
        .Add(static_cast<std::uint64_t>(batches));
    reg.GetCounter(converged ? "power.mc_converged" : "power.mc_maxed_out")
        .Add(1);
    // Convergence state of the most recent run, for -v style probes.
    reg.GetGauge("power.mc_last_ci95_rel")
        .Set(datapath_stat.RelativeHalfWidth95());
  }

  PowerResult result;
  result.breakdown = acc.Mean();
  result.ci95_rel = datapath_stat.RelativeHalfWidth95();
  result.batches = batches;
  result.patterns = 64ULL * static_cast<std::uint64_t>(batches);
  return result;
}

PowerResult MeasureTestSetPower(const netlist::Netlist& nl,
                                const fault::TestPlan& plan,
                                const PowerModel& model,
                                std::span<const fault::StuckFault> faults,
                                std::uint32_t tpgr_seed, int num_patterns,
                                bool unit_delay) {
  PFD_CHECK_MSG(num_patterns > 0, "empty test set");
  obs::Span span("power.test_set",
                 obs::Span::Args(
                     {{"faults", static_cast<std::int64_t>(faults.size())},
                      {"patterns", num_patterns}}));
  logicsim::Simulator sim(nl);
  for (const fault::StuckFault& f : faults) {
    fault::InjectFault(sim, f, ~0ULL);
  }
  sim.EnableToggleCounting(true);
  sim.EnableUnitDelay(unit_delay);

  tpg::Tpgr tpgr(tpgr_seed);
  const std::size_t n_ops = plan.operand_bits.size();
  std::vector<std::vector<std::uint32_t>> lane_values(
      n_ops, std::vector<std::uint32_t>(64));

  // The test set length is rounded up to a whole number of 64-lane batches
  // by continuing the TPGR stream (documented in DESIGN.md; identical
  // protocol for baseline and faulty runs, so percentage changes are exact).
  const int batches = (num_patterns + 63) / 64;
  std::uint64_t machine_cycles = 0;
  for (int batch = 0; batch < batches; ++batch) {
    for (int lane = 0; lane < 64; ++lane) {
      for (std::size_t op = 0; op < n_ops; ++op) {
        const int width = static_cast<int>(plan.operand_bits[op].size());
        lane_values[op][lane] = tpgr.NextOperand(width).value();
      }
    }
    RunBatch(sim, plan, lane_values);
    machine_cycles +=
        64ULL * static_cast<std::uint64_t>(plan.cycles_per_pattern);
  }

  if (obs::Enabled()) {
    obs::Registry& reg = obs::Registry::Global();
    reg.GetCounter("power.test_set_runs").Add(1);
    reg.GetCounter("power.test_set_patterns")
        .Add(64ULL * static_cast<std::uint64_t>(batches));
    reg.GetCounter("power.toggles").Add(TotalToggles(sim));
  }

  PowerResult result;
  result.breakdown = model.Compute(sim, machine_cycles);
  result.batches = batches;
  result.patterns = 64ULL * static_cast<std::uint64_t>(batches);
  return result;
}

}  // namespace pfd::power
