#include "power/power_sim.hpp"

#include <array>
#include <vector>

#include "base/rng.hpp"
#include "base/stats.hpp"
#include "obs/flight.hpp"
#include "obs/trace.hpp"
#include "tpg/lfsr.hpp"

namespace pfd::power {

using netlist::GateId;

namespace {

// Drives one batch of 64 per-lane operand values onto the input bit gates.
void DriveLaneOperands(
    logicsim::Simulator& sim, const fault::TestPlan& plan,
    const std::vector<std::vector<std::uint32_t>>& lane_values) {
  for (const auto& [gate, value] : plan.pinned) {
    sim.SetInputAllLanes(gate, value);
  }
  for (std::size_t op = 0; op < plan.operand_bits.size(); ++op) {
    const auto& bits = plan.operand_bits[op];
    for (std::size_t b = 0; b < bits.size(); ++b) {
      sim.SetInput(bits[b],
                   tpg::PackBit(lane_values[op], static_cast<int>(b)));
    }
  }
}

// Runs one batch: 64 lanes, each carrying an independent pattern, through
// one full schedule of the test plan.
void RunBatch(logicsim::Simulator& sim, const fault::TestPlan& plan,
              const std::vector<std::vector<std::uint32_t>>& lane_values) {
  DriveLaneOperands(sim, plan, lane_values);
  for (int c = 0; c < plan.cycles_per_pattern; ++c) {
    if (plan.reset != netlist::kNoGate) {
      sim.SetInputAllLanes(plan.reset, c == 0 ? Trit::kOne : Trit::kZero);
    }
    sim.Step();
  }
}

// Fills all 64 lanes of every operand from `rng`.
void FillRandomLanes(Rng& rng, const fault::TestPlan& plan,
                     std::vector<std::vector<std::uint32_t>>& lane_values) {
  for (std::size_t op = 0; op < plan.operand_bits.size(); ++op) {
    const int width = static_cast<int>(plan.operand_bits[op].size());
    for (int lane = 0; lane < 64; ++lane) {
      lane_values[op][lane] = rng.Bits(width);
    }
  }
}

struct BreakdownAccumulator {
  double datapath = 0, controller = 0, interface = 0, total = 0;
  int n = 0;
  void Add(const PowerBreakdown& b) {
    datapath += b.datapath_uw;
    controller += b.controller_uw;
    interface += b.interface_uw;
    total += b.total_uw;
    ++n;
  }
  PowerBreakdown Mean() const {
    PFD_CHECK(n > 0);
    return {datapath / n, controller / n, interface / n, total / n};
  }
};

// Sum of this run's per-gate switching counts — the quantity the power
// model integrates. Only called when the obs registry is enabled.
std::uint64_t TotalToggles(const logicsim::Simulator& sim) {
  std::uint64_t total = 0;
  for (std::size_t g = 0; g < sim.nl().size(); ++g) {
    total += sim.ToggleCount(static_cast<netlist::GateId>(g));
  }
  return total;
}

}  // namespace

// Parallel scheme: one base simulator is warmed up with a throwaway batch
// (stream 0) to flush the power-up X state; measured batch b then copies
// that machine state, draws its 64 patterns from private stream b+1
// (exec::ShardSeed), and writes its PowerBreakdown into slot b. Batches are
// issued in waves of ~thread-count; after each wave, per-batch single-sample
// stats fold into the running estimate in batch order (RunningStat::Merge)
// and the convergence rule is evaluated at each fold — so the stopping
// batch, the mean, and the CI are a pure function of the config, never of
// the thread count or the wave split (a converged wave's surplus batches
// are discarded, not folded). A batch quarantined by ParallelForGuarded and
// still failing after its retry is excluded from the fold and listed in
// run_status; a guard trip ends the run after the current wave, and the
// estimate covers exactly the batches folded so far.
PowerResult EstimatePowerMonteCarlo(const netlist::Netlist& nl,
                                    const fault::TestPlan& plan,
                                    const PowerModel& model,
                                    std::span<const fault::StuckFault> faults,
                                    const MonteCarloConfig& config) {
  obs::Span span("power.monte_carlo",
                 obs::Span::Args(
                     {{"faults", static_cast<std::int64_t>(faults.size())},
                      {"max_batches", config.max_batches}}));
  guard::Checker local_check(config.limits);
  guard::Checker& check =
      config.checker != nullptr ? *config.checker : local_check;

  PowerResult result;
  logicsim::Simulator base(nl);
  for (const fault::StuckFault& f : faults) {
    fault::InjectFault(base, f);
  }
  base.EnableToggleCounting(true);
  base.EnableUnitDelay(config.unit_delay);

  const std::size_t n_ops = plan.operand_bits.size();
  const std::uint64_t batch_cycles =
      64ULL * static_cast<std::uint64_t>(plan.cycles_per_pattern);
  const std::uint64_t det_seed = config.exec.deterministic_seed;

  // Warm-up batch (stream 0): flushes power-up X state so every measured
  // batch starts from the same steady-state machine. An already-tripped
  // guard skips even this: the result is then empty with zero batches.
  if (!check.Check().ok()) {
    const guard::Status s = check.status();
    result.run_status.code = s.code;
    result.run_status.message = s.message;
    return result;
  }
  {
    std::vector<std::vector<std::uint32_t>> lane_values(
        n_ops, std::vector<std::uint32_t>(64));
    Rng rng(exec::ShardSeed(config.seed, det_seed, 0));
    FillRandomLanes(rng, plan, lane_values);
    RunBatch(base, plan, lane_values);
    check.AddSimCycles(static_cast<std::uint64_t>(plan.cycles_per_pattern));
  }

  exec::PoolLease pool(config.pool, config.exec);
  std::vector<PowerBreakdown> results(
      static_cast<std::size_t>(config.max_batches));
  std::vector<char> batch_ok(static_cast<std::size_t>(config.max_batches), 0);

  RunningStat datapath_stat;
  BreakdownAccumulator acc;
  int used = 0;         // batches folded into the estimate
  int fold_cursor = 0;  // next batch index the ordered fold will examine
  int computed = 0;     // batches dispatched (>= used after convergence)
  bool converged = false;
  while (!converged && computed < config.max_batches && !check.tripped()) {
    const int wave =
        std::min(config.max_batches - computed,
                 computed == 0 ? std::max(config.min_batches, pool->threads())
                               : pool->threads());
    const guard::RunStatus wave_status = pool->ParallelForGuarded(
        static_cast<std::size_t>(wave),
        [&](std::size_t k) {
          guard::MaybeFail("power.mc_batch");
          const bool batch_obs_on = obs::Enabled();
          const double t0 = batch_obs_on ? obs::NowMicros() : 0.0;
          const int b = computed + static_cast<int>(k);
          logicsim::Simulator sim = base;  // copy of the warmed machine
          sim.ResetToggleCounts();
          std::vector<std::vector<std::uint32_t>> lane_values(
              n_ops, std::vector<std::uint32_t>(64));
          Rng rng(exec::ShardSeed(config.seed, det_seed,
                                  static_cast<std::uint64_t>(b) + 1));
          FillRandomLanes(rng, plan, lane_values);
          RunBatch(sim, plan, lane_values);
          check.AddSimCycles(
              static_cast<std::uint64_t>(plan.cycles_per_pattern));
          results[static_cast<std::size_t>(b)] =
              model.Compute(sim, batch_cycles).breakdown;
          if (batch_obs_on) {
            obs::Registry& reg = obs::Registry::Global();
            reg.GetCounter("power.toggles").Add(TotalToggles(sim));
            static obs::Histogram& hist =
                reg.GetHistogram("power.mc_batch_us");
            hist.RecordDouble(obs::NowMicros() - t0);
          }
        },
        &check);
    // The wave ran unit indices [0, wave); remap to batch indices.
    for (const std::size_t k : wave_status.completed) {
      batch_ok[static_cast<std::size_t>(computed) + k] = 1;
    }
    for (const guard::FailedUnit& f : wave_status.failed_units) {
      result.run_status.failed_units.push_back(
          {static_cast<std::size_t>(computed) + f.index, f.what});
    }
    computed += wave;
    // Ordered reduction: fold batch by batch, stop at the first batch where
    // the convergence rule fires. Permanently failed batches are skipped —
    // their RNG streams are independent, so the fold stays a pure function
    // of which batches completed.
    for (; fold_cursor < computed && !converged; ++fold_cursor) {
      if (batch_ok[static_cast<std::size_t>(fold_cursor)] == 0) continue;
      const PowerBreakdown& pb =
          results[static_cast<std::size_t>(fold_cursor)];
      RunningStat sample;
      sample.Add(pb.datapath_uw);
      datapath_stat.Merge(sample);
      acc.Add(pb);
      ++used;
      if (used >= config.min_batches &&
          datapath_stat.RelativeHalfWidth95() < config.rel_tol) {
        converged = true;
      }
    }
  }

  result.run_status.total_units = static_cast<std::size_t>(computed);
  for (int b = 0; b < computed; ++b) {
    if (batch_ok[static_cast<std::size_t>(b)] != 0) {
      result.run_status.completed.push_back(static_cast<std::size_t>(b));
    }
  }
  if (check.tripped()) {
    const guard::Status s = check.status();
    result.run_status.code = s.code;
    result.run_status.message = s.message;
  } else if (!result.run_status.failed_units.empty()) {
    result.run_status.code = guard::StatusCode::kPartialFailure;
    result.run_status.message =
        std::to_string(result.run_status.failed_units.size()) +
        " Monte Carlo batch(es) failed";
  }

  if (obs::Enabled()) {
    obs::Registry& reg = obs::Registry::Global();
    reg.GetCounter("power.mc_runs").Add(1);
    reg.GetCounter("power.mc_batches")
        .Add(static_cast<std::uint64_t>(used));
    reg.GetCounter(converged ? "power.mc_converged" : "power.mc_maxed_out")
        .Add(1);
    // Convergence state of the most recent run, for -v style probes.
    reg.GetGauge("power.mc_last_ci95_rel")
        .Set(datapath_stat.RelativeHalfWidth95());
  }

  if (acc.n == 0) return result;  // nothing folded: zero estimate + status
  result.breakdown = acc.Mean();
  result.ci95_rel = datapath_stat.RelativeHalfWidth95();
  result.batches = used;
  result.patterns = 64ULL * static_cast<std::uint64_t>(used);
  return result;
}

PowerResult MeasureTestSetPower(const netlist::Netlist& nl,
                                const fault::StimulusSpec& stimulus,
                                const PowerModel& model,
                                std::span<const fault::StuckFault> faults,
                                const TestSetPowerConfig& config) {
  const fault::TestPlan& plan = stimulus.plan;
  PFD_CHECK_MSG(stimulus.num_patterns > 0, "empty test set");
  obs::Span span("power.test_set",
                 obs::Span::Args(
                     {{"faults", static_cast<std::int64_t>(faults.size())},
                      {"patterns", stimulus.num_patterns}}));
  guard::Checker local_check(config.limits);
  guard::Checker& check =
      config.checker != nullptr ? *config.checker : local_check;
  logicsim::Simulator sim(nl);
  for (const fault::StuckFault& f : faults) {
    fault::InjectFault(sim, f);
  }
  sim.EnableToggleCounting(true);
  sim.EnableUnitDelay(config.unit_delay);

  tpg::Tpgr tpgr(stimulus.tpgr_seed);
  const std::size_t n_ops = plan.operand_bits.size();
  std::vector<std::vector<std::uint32_t>> lane_values(
      n_ops, std::vector<std::uint32_t>(64));

  // The test set length is rounded up to a whole number of 64-lane batches
  // by continuing the TPGR stream (documented in DESIGN.md; identical
  // protocol for baseline and faulty runs, so percentage changes are exact).
  //
  // The 64-lane batching here is FROZEN, deliberately independent of the
  // SIMD lane width: each batch draws exactly 64 patterns from the TPGR
  // stream, and widening it would redeal every operand after the first
  // batch, silently changing every published power figure. The power
  // engines always run 64-lane simulators (Simulator's default width).
  //
  // The engine is serial and stateful (one machine, one TPGR stream), so
  // isolation works per batch: operands are drawn *before* the failpoint /
  // batch body, keeping the stream intact, and a failing batch is retried
  // once against the same operands (the reset cycle at each batch start
  // re-initialises the machine). A batch that still fails is skipped and
  // listed; its patterns are excluded from the cycle normalisation.
  // Computed in 64-bit: `num_patterns + 63` overflows int for pattern
  // counts near INT_MAX (a corrupted or hostile request), flipping the
  // batch count negative and skipping the whole run silently.
  const std::int64_t batches64 =
      (static_cast<std::int64_t>(stimulus.num_patterns) + 63) / 64;
  PFD_CHECK_MSG(batches64 <= kMaxTestSetBatches,
                "test-set pattern count " +
                    std::to_string(stimulus.num_patterns) +
                    " exceeds the supported maximum");
  const int batches = static_cast<int>(batches64);
  PowerResult result;
  result.run_status.total_units = static_cast<std::size_t>(batches);
  const bool obs_on = obs::Enabled();
  std::uint64_t machine_cycles = 0;
  for (int batch = 0; batch < batches; ++batch) {
    if (!check.Check().ok()) break;
    for (int lane = 0; lane < 64; ++lane) {
      for (std::size_t op = 0; op < n_ops; ++op) {
        const int width = static_cast<int>(plan.operand_bits[op].size());
        lane_values[op][lane] = tpgr.NextOperand(width).value();
      }
    }
    bool batch_done = false;
    bool tripped_mid_batch = false;
    try {
      guard::MaybeFail("power.test_set_batch");
      RunBatch(sim, plan, lane_values);
      batch_done = true;
    } catch (const guard::Tripped&) {
      tripped_mid_batch = true;
    } catch (...) {
      guard::FailedUnit failed{static_cast<std::size_t>(batch),
                               guard::CurrentExceptionMessage()};
      if (obs_on) {
        obs::Registry& reg = obs::Registry::Global();
        reg.GetCounter("guard.quarantined_units").Add(1);
        reg.GetCounter("guard.retries").Add(1);
      }
      if (obs::FlightEnabled()) {
        obs::RecordFlight(obs::FlightKind::kQuarantine, "power.test_set",
                          "batch " + std::to_string(batch) + ": " +
                              failed.what);
      }
      try {
        RunBatch(sim, plan, lane_values);
        batch_done = true;
        if (obs_on) {
          obs::Registry::Global().GetCounter("guard.retry_successes").Add(1);
        }
        if (obs::FlightEnabled()) {
          obs::RecordFlight(obs::FlightKind::kRetryOutcome, "power.test_set",
                            "batch " + std::to_string(batch) + ": success");
        }
      } catch (const guard::Tripped&) {
        tripped_mid_batch = true;
      } catch (...) {
        failed.what += "; retry: " + guard::CurrentExceptionMessage();
        if (obs::FlightEnabled()) {
          obs::RecordFlight(obs::FlightKind::kRetryOutcome, "power.test_set",
                            "batch " + std::to_string(batch) +
                                ": failed again");
        }
        result.run_status.failed_units.push_back(std::move(failed));
      }
    }
    if (tripped_mid_batch) break;
    if (batch_done) {
      result.run_status.completed.push_back(static_cast<std::size_t>(batch));
      machine_cycles +=
          64ULL * static_cast<std::uint64_t>(plan.cycles_per_pattern);
      check.AddSimCycles(static_cast<std::uint64_t>(plan.cycles_per_pattern));
    }
  }

  if (check.tripped()) {
    const guard::Status s = check.status();
    result.run_status.code = s.code;
    result.run_status.message = s.message;
  } else if (!result.run_status.failed_units.empty()) {
    result.run_status.code = guard::StatusCode::kPartialFailure;
    result.run_status.message =
        std::to_string(result.run_status.failed_units.size()) +
        " test-set batch(es) failed";
  }

  if (obs_on) {
    obs::Registry& reg = obs::Registry::Global();
    reg.GetCounter("power.test_set_runs").Add(1);
    reg.GetCounter("power.test_set_patterns")
        .Add(64ULL * static_cast<std::uint64_t>(
                         result.run_status.completed.size()));
    reg.GetCounter("power.toggles").Add(TotalToggles(sim));
  }

  const PowerComputeResult pc = model.Compute(sim, machine_cycles);
  result.breakdown = pc.breakdown;
  if (!pc.ok() && result.run_status.code == guard::StatusCode::kOk) {
    // Nothing completed but no trip or failure was recorded (e.g. a
    // 0-pattern request): surface the zero-cycle condition as a partial
    // result rather than returning a silently-ok all-zero breakdown.
    result.run_status.code = pc.status.code;
    result.run_status.message = pc.status.message;
  }
  if (machine_cycles == 0) return result;  // nothing completed
  result.batches = static_cast<int>(result.run_status.completed.size());
  result.patterns =
      64ULL * static_cast<std::uint64_t>(result.run_status.completed.size());
  return result;
}

}  // namespace pfd::power
