// Parallel execution core: a small work-stealing thread pool shared by the
// engines (fault simulation shards, Monte Carlo power batches, pipeline
// step-4 fault deciders).
//
// Design constraints, in order:
//   1. Determinism. Thread count is a *performance* knob, never a results
//      knob: engines shard work into fixed units (63-fault lane groups,
//      64-pattern batches, single faults), derive any per-unit RNG stream
//      from the unit index (ShardSeed), write into disjoint output slots,
//      and reduce in unit order. Every engine built on this pool produces
//      bit-identical results for threads = 1, 2, 8, ...
//   2. Zero overhead at threads=1. A single-thread pool spawns no workers
//      and ParallelFor degenerates to a plain loop on the caller.
//   3. Exceptions propagate. The first exception thrown by a loop body is
//      rethrown from ParallelFor on the calling thread; remaining unclaimed
//      work is skipped (claimed-but-unstarted chunks are drained, not run).
//
// Observability: each worker thread installs an obs::ThreadTraceBuffer, so
// spans recorded inside loop bodies append to a thread-local buffer without
// touching the global trace mutex; buffers are flushed into the installed
// sink when the pool shuts down (and on overflow). Counters/gauges are
// already lock-free atomics and need no special handling.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pfd::exec {

struct Options {
  // Worker count. 0 = auto: $PFD_THREADS when set to a positive integer,
  // otherwise std::thread::hardware_concurrency().
  int threads = 0;
  // Extra entropy folded into per-shard RNG stream derivation (ShardSeed)
  // by engines that deal independent random streams to work units (the
  // Monte Carlo power engine). Changing it selects a different — still
  // fully deterministic — sample sequence; the thread count never does.
  std::uint64_t deterministic_seed = 0;
};

// Resolved worker count for the options (always >= 1).
int ResolveThreads(const Options& options);

// Seed of work-unit `shard`'s private RNG stream: a splitmix64-style mix of
// the engine seed, Options::deterministic_seed, and the shard index. Fixed
// shard -> seed mapping is what keeps sharded engines bit-identical across
// thread counts.
std::uint64_t ShardSeed(std::uint64_t engine_seed,
                        std::uint64_t deterministic_seed, std::uint64_t shard);

class Pool {
 public:
  explicit Pool(const Options& options = {});
  // Joins the workers; each flushes its thread-local trace buffer on exit.
  ~Pool();
  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  int threads() const { return threads_; }

  // Runs body(i) for every i in [0, n), distributed over the workers; the
  // calling thread participates, so a 1-thread pool is a plain loop. Blocks
  // until every index ran (or was skipped after a failure) and rethrows the
  // first exception `body` threw. Loop bodies must write to disjoint data;
  // they must not call back into this pool (not reentrant).
  void ParallelFor(std::size_t n,
                   const std::function<void(std::size_t)>& body);

 private:
  struct Job;
  void WorkerMain(std::size_t slot);
  static void RunChunks(Job& job, std::size_t home);

  int threads_ = 1;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  Job* job_ = nullptr;        // current job; guarded by mu_
  std::uint64_t epoch_ = 0;   // bumped per published job; guarded by mu_
  bool shutdown_ = false;
};

// One-shot convenience: scoped pool for a single loop.
void ParallelFor(const Options& options, std::size_t n,
                 const std::function<void(std::size_t)>& body);

}  // namespace pfd::exec
