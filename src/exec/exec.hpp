// Parallel execution core: a small work-stealing thread pool shared by the
// engines (fault simulation shards, Monte Carlo power batches, pipeline
// step-4 fault deciders).
//
// Design constraints, in order:
//   1. Determinism. Thread count is a *performance* knob, never a results
//      knob: engines shard work into fixed units (63-fault lane groups,
//      64-pattern batches, single faults), derive any per-unit RNG stream
//      from the unit index (ShardSeed), write into disjoint output slots,
//      and reduce in unit order. Every engine built on this pool produces
//      bit-identical results for threads = 1, 2, 8, ...
//   2. Zero overhead at threads=1. A single-thread pool spawns no workers
//      and ParallelFor degenerates to a plain loop on the caller.
//   3. Exceptions propagate deterministically. When loop bodies throw,
//      ParallelFor rethrows the exception of the *lowest failing index* —
//      workers keep running indices below the current minimum failing index
//      so the winner cannot depend on scheduling — and skips indices above
//      it. ParallelForGuarded instead quarantines failing units and always
//      returns (see below).
//
// Robustness (pfd::guard integration): ParallelForGuarded is the engines'
// campaign-grade entry point. A throwing unit is quarantined into a
// guard::FailedUnit and retried once serially after the parallel phase;
// guard::Limits (deadline / cancellation / cycle budget) are checked at
// unit boundaries via the caller's guard::Checker; a unit that throws
// guard::Tripped is treated as "abandoned mid-unit by a tripped guard",
// not as a failure. The returned guard::RunStatus lists the completed unit
// indices explicitly, so partial results are always attributable.
//
// Observability: each worker thread installs an obs::ThreadTraceBuffer, so
// spans recorded inside loop bodies append to a thread-local buffer without
// touching the global trace mutex; buffers are flushed into the installed
// sink when the pool shuts down (and on overflow). Counters/gauges are
// already lock-free atomics and need no special handling.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "guard/guard.hpp"

namespace pfd::exec {

struct Options {
  // Worker count. 0 = auto: $PFD_THREADS when set, otherwise
  // std::thread::hardware_concurrency(). A set but malformed PFD_THREADS
  // (non-numeric, zero, negative, or out of range) throws pfd::Error rather
  // than silently falling back.
  int threads = 0;
  // Extra entropy folded into per-shard RNG stream derivation (ShardSeed)
  // by engines that deal independent random streams to work units (the
  // Monte Carlo power engine). Changing it selects a different — still
  // fully deterministic — sample sequence; the thread count never does.
  std::uint64_t deterministic_seed = 0;
  // Chunking granularity for ParallelFor/ParallelForGuarded: the maximum
  // number of loop indices grouped into one steal-able chunk. 0 = auto
  // (~4 chunks per participant). Engines whose units shrink as the loop
  // progresses — the differential fault engine retires detected lanes, so
  // shard costs vary by orders of magnitude — set 1 so work stealing
  // rebalances per unit instead of per block. Scheduling only; results are
  // bit-identical for every value.
  std::size_t max_chunk_units = 0;
};

// Resolved worker count for the options (always >= 1). Throws pfd::Error
// when $PFD_THREADS is set but is not an integer in [1, kMaxThreads].
int ResolveThreads(const Options& options);

// Upper bound accepted from $PFD_THREADS / Options::threads resolution;
// generous for any real machine while catching overflow garbage.
inline constexpr int kMaxThreads = 4096;

// Seed of work-unit `shard`'s private RNG stream: a splitmix64-style mix of
// the engine seed, Options::deterministic_seed, and the shard index. Fixed
// shard -> seed mapping is what keeps sharded engines bit-identical across
// thread counts.
std::uint64_t ShardSeed(std::uint64_t engine_seed,
                        std::uint64_t deterministic_seed, std::uint64_t shard);

class Pool {
 public:
  explicit Pool(const Options& options = {});
  // Joins the workers; each flushes its thread-local trace buffer on exit.
  ~Pool();
  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  int threads() const { return threads_; }

  // Runs body(i) for every i in [0, n), distributed over the workers; the
  // calling thread participates, so a 1-thread pool is a plain loop. Blocks
  // until every index ran (or was skipped after a failure) and rethrows the
  // exception of the lowest failing index (deterministic across thread
  // counts). Loop bodies must write to disjoint data; re-entering the same
  // pool from a loop body throws pfd::Error (PFD_CHECK).
  //
  // Concurrency contract (pinned, TSan-covered): concurrent
  // ParallelFor/ParallelForGuarded calls from *different external threads*
  // on one pool are safe and serialize through an internal job gate — the
  // pool runs exactly one job at a time, later callers block until the
  // current job (including its join) finishes, in mutex acquisition order.
  // Each call keeps its own determinism and failure semantics; only
  // scheduling between calls is affected. The degenerate inline paths
  // (worker-less pool, or n <= 1) run on the caller without taking the
  // gate — they touch no shared pool state and may overlap a pooled job.
  // A metric scope installed on the calling thread (obs::ScopedMetricScope)
  // is propagated to the workers for the duration of the job, so teed
  // counters/histograms attribute parallel work to the submitting request.
  void ParallelFor(std::size_t n,
                   const std::function<void(std::size_t)>& body);

  // Campaign-grade variant: never throws for unit failures. A throwing unit
  // is quarantined and retried once serially (in index order, on the
  // calling thread) after the parallel phase; permanent failures land in
  // RunStatus::failed_units. When `checker` is non-null its limits are
  // checked before every unit; once tripped, remaining units are skipped
  // and the trip decides RunStatus::code. Bodies may also call
  // checker->CheckOrThrow() inside their own loops to abandon a unit
  // mid-flight (guard::Tripped is not a failure). RunStatus::completed
  // lists exactly the unit indices whose body ran to completion.
  //
  // `ordered_done`, when non-null, is fired exactly once per completed unit
  // in strict unit-index order: unit i's hook runs only after units
  // 0..i-1 all completed and fired theirs (the contiguous completed
  // prefix). The order is therefore independent of thread count and steal
  // order — this is what lets the checkpoint journal promise
  // thread-count-invariant record sequences. A unit that permanently fails
  // stalls the prefix: later units still run, but their hooks never fire
  // in this invocation. The hook runs under an internal mutex on whichever
  // thread completed the prefix-advancing unit, with the unit body's
  // writes visible; it must not throw (a throwing hook disables itself for
  // the rest of the loop rather than crash a worker).
  guard::RunStatus ParallelForGuarded(
      std::size_t n, const std::function<void(std::size_t)>& body,
      guard::Checker* checker = nullptr,
      const std::function<void(std::size_t)>* ordered_done = nullptr);

 private:
  struct Job;
  void WorkerMain(std::size_t slot);
  void RunChunks(Job& job, std::size_t home);
  void RunJob(Job& job, std::size_t n);

  int threads_ = 1;
  std::size_t max_chunk_units_ = 0;
  std::vector<std::thread> workers_;
  std::mutex job_gate_;  // serializes jobs from concurrent external callers
  std::mutex mu_;
  std::condition_variable work_cv_;
  Job* job_ = nullptr;        // current job; guarded by mu_
  std::uint64_t epoch_ = 0;   // bumped per published job; guarded by mu_
  bool shutdown_ = false;
};

// Borrow-or-own handle for engines that accept an injected shared pool (a
// long-lived service pool multiplexing many requests onto one worker set)
// but default to constructing their own from Options. Which pool runs a
// loop is scheduling only — results stay bit-identical either way (see the
// determinism contract above).
class PoolLease {
 public:
  PoolLease(Pool* shared, const Options& options) : pool_(shared) {
    if (pool_ == nullptr) {
      owned_.emplace(options);
      pool_ = &*owned_;
    }
  }
  PoolLease(const PoolLease&) = delete;
  PoolLease& operator=(const PoolLease&) = delete;

  Pool& operator*() { return *pool_; }
  Pool* operator->() { return pool_; }

 private:
  Pool* pool_;
  std::optional<Pool> owned_;
};

// One-shot convenience: scoped pool for a single loop.
void ParallelFor(const Options& options, std::size_t n,
                 const std::function<void(std::size_t)>& body);

}  // namespace pfd::exec
