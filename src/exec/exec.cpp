#include "exec/exec.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <deque>
#include <exception>
#include <limits>
#include <utility>

#include "base/error.hpp"
#include "obs/flight.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"

namespace pfd::exec {

int ResolveThreads(const Options& options) {
  if (options.threads > 0) return options.threads;
  if (const char* env = std::getenv("PFD_THREADS")) {
    // Strict parse: a set-but-broken PFD_THREADS silently falling back to
    // hardware concurrency turns a typo into an unexplained perf cliff (or
    // an accidental 128-thread run). Reject loudly instead.
    errno = 0;
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    const bool overflowed = errno == ERANGE;
    const bool numeric = end != env && end != nullptr && *end == '\0';
    PFD_CHECK_MSG(numeric && !overflowed && v >= 1 && v <= kMaxThreads,
                  "PFD_THREADS='" + std::string(env) +
                      "' is not an integer in [1, " +
                      std::to_string(kMaxThreads) + "]");
    return static_cast<int>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

std::uint64_t ShardSeed(std::uint64_t engine_seed,
                        std::uint64_t deterministic_seed,
                        std::uint64_t shard) {
  // splitmix64 finalizer over the combined inputs: adjacent shard indices
  // land far apart, and shard streams never collide with the engine seed
  // itself (shard + 1 offset).
  std::uint64_t z = engine_seed + (shard + 1) * 0x9e3779b97f4a7c15ULL +
                    deterministic_seed * 0xd1342543de82ef95ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {

constexpr std::size_t kNoIndex = std::numeric_limits<std::size_t>::max();

// Pool whose ParallelFor the current thread is executing a body for; used
// to reject same-pool re-entry (which would deadlock the job join).
thread_local const void* tls_running_pool = nullptr;

// Handles the chunk loop touches when obs is on; resolved once so the hot
// path never takes the registry mutex. exec.queue_depth tracks unclaimed
// chunks summed over every job in flight (several pools may publish
// concurrently, so the gauge uses Add accounting — a last-writer-wins Set
// from two jobs clobbers one job's contribution); the histograms attribute
// tail latency to queue wait vs. long bodies.
struct PoolObsHandles {
  obs::Gauge& queue_depth;
  obs::Histogram& task_queue_us;
  obs::Histogram& task_run_us;
};

PoolObsHandles& PoolObs() {
  static PoolObsHandles* handles = new PoolObsHandles{
      obs::Registry::Global().GetGauge("exec.queue_depth"),
      obs::Registry::Global().GetHistogram("exec.task_queue_us"),
      obs::Registry::Global().GetHistogram("exec.task_run_us")};
  return *handles;
}

// Ordered-completion bookkeeping for ParallelForGuarded: Complete(i) marks
// unit i done and fires the hook for every unit of the now-contiguous
// completed prefix, under one mutex so hooks are serialized in index order.
// The mutex also carries the happens-before from each unit body's writes
// (done[i] is set under the lock by the thread that ran the body) to the
// hook invocation, whichever thread that lands on.
struct OrderedCommit {
  const std::function<void(std::size_t)>* hook = nullptr;
  std::mutex mu;
  std::vector<char> done;
  std::size_t next = 0;
  bool disabled = false;

  void Complete(std::size_t i) {
    if (hook == nullptr) return;
    std::lock_guard<std::mutex> lock(mu);
    done[i] = 1;
    while (!disabled && next < done.size() && done[next] != 0) {
      try {
        (*hook)(next);
      } catch (...) {
        // The hook contract is no-throw (journal appends absorb their own
        // I/O failures); a hook that throws anyway disables itself for the
        // rest of the loop instead of taking down a worker thread.
        disabled = true;
        if (obs::FlightEnabled()) {
          obs::RecordFlight(obs::FlightKind::kNote, "exec.ordered_done",
                            "hook threw: " +
                                guard::CurrentExceptionMessage());
        }
      }
      ++next;
    }
  }
};

}  // namespace

// One ParallelFor invocation: per-participant chunk deques (own queue popped
// from the front, victims stolen from the back), a count of workers still
// inside the job, and the failure bookkeeping for both modes. The Job lives
// on the caller's stack; the caller may only destroy it once `active` drops
// to zero, i.e. once every worker has left RunChunks — chunk bookkeeping
// alone is not enough, because a worker can still be scanning the (empty)
// queues after the last chunk completed.
struct Pool::Job {
  struct Queue {
    std::mutex mu;
    std::deque<std::pair<std::size_t, std::size_t>> chunks;  // [begin, end)
  };

  explicit Job(std::size_t participants)
      : queues(participants), tasks_by_slot(participants) {}

  const std::function<void(std::size_t)>* body = nullptr;
  std::vector<Queue> queues;
  std::atomic<int> active{0};  // workers inside RunChunks
  std::mutex done_mu;
  std::condition_variable done_cv;

  // Throwing mode: the lowest failing index decides the rethrown exception.
  // Indices >= min_failed are skipped, indices below it keep running, so
  // the winner is the smallest index whose body throws — deterministic for
  // every thread count and steal order.
  std::atomic<std::size_t> min_failed{kNoIndex};
  std::mutex error_mu;
  std::exception_ptr error;
  std::size_t error_index = kNoIndex;  // guarded by error_mu

  // obs v2 instrumentation. `obs_on` and `publish_ts_us` are latched once
  // per Job in RunJob so every participant agrees on whether to record and
  // measures queue wait against its own job's publication instant —
  // per-job-safe under back-to-back jobs from concurrent callers. The
  // per-job accumulators are published into registry counters after the
  // join (cold path), keeping RunChunks free of name lookups.
  bool obs_on = false;
  double publish_ts_us = 0.0;                   // when chunks became visible
  std::atomic<std::uint64_t> steals{0};         // chunks taken from a victim
  std::vector<std::atomic<std::uint64_t>> tasks_by_slot;  // units attempted
  // Metric scope of the submitting thread, installed on every worker for
  // the duration of the job so teed metrics attribute to the request that
  // submitted the work.
  obs::MetricScope* scope = nullptr;

  // Guarded mode (quarantine instead of rethrow).
  bool guarded = false;
  guard::Checker* checker = nullptr;
  std::atomic<bool> stop{false};  // a guard tripped; skip remaining units
  std::mutex fail_mu;
  std::vector<guard::FailedUnit> failures;  // first-attempt failures
  std::vector<char>* completed = nullptr;   // per-unit flags, disjoint writes
  OrderedCommit* ordered = nullptr;         // optional in-order hook state
};

Pool::Pool(const Options& options)
    : threads_(ResolveThreads(options)),
      max_chunk_units_(options.max_chunk_units) {
  workers_.reserve(static_cast<std::size_t>(threads_ - 1));
  for (int w = 0; w + 1 < threads_; ++w) {
    workers_.emplace_back(&Pool::WorkerMain, this,
                          static_cast<std::size_t>(w));
  }
}

Pool::~Pool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void Pool::WorkerMain(std::size_t slot) {
  // Spans recorded by loop bodies on this thread buffer locally; the buffer
  // flushes into the installed trace sink when this worker exits (pool
  // shutdown) or on overflow.
  obs::ThreadTraceBuffer trace_buffer;
  std::uint64_t seen_epoch = 0;
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    // The epoch guard keeps a worker from re-entering a job it already
    // drained; joining the job (the `active` increment) happens under mu_,
    // so after the coordinator retires job_ no new worker can join and the
    // active count only falls.
    work_cv_.wait(lock, [&] {
      return shutdown_ || (job_ != nullptr && epoch_ != seen_epoch);
    });
    if (shutdown_) return;
    Job* job = job_;
    seen_epoch = epoch_;
    job->active.fetch_add(1, std::memory_order_relaxed);
    lock.unlock();
    {
      // Adopt the submitter's metric scope for the duration of the job.
      obs::ScopedMetricScope scope_guard(job->scope);
      RunChunks(*job, slot);
    }
    {
      // Last one out notifies under done_mu: the coordinator's predicate
      // check holds the same mutex, so it cannot destroy the Job between
      // our decrement and the notify.
      std::lock_guard<std::mutex> done_lock(job->done_mu);
      if (job->active.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        job->done_cv.notify_all();
      }
    }
    lock.lock();
  }
}

void Pool::RunChunks(Job& job, std::size_t home) {
  const void* const saved_pool = tls_running_pool;
  tls_running_pool = this;
  const bool obs_on = job.obs_on;
  std::uint64_t attempted = 0;  // units this call ran a body for
  const std::size_t participants = job.queues.size();
  while (true) {
    std::pair<std::size_t, std::size_t> chunk;
    bool found = false;
    bool stolen = false;
    for (std::size_t k = 0; k < participants && !found; ++k) {
      Job::Queue& q = job.queues[(home + k) % participants];
      std::lock_guard<std::mutex> lock(q.mu);
      if (q.chunks.empty()) continue;
      if (k == 0) {
        chunk = q.chunks.front();
        q.chunks.pop_front();
      } else {
        chunk = q.chunks.back();
        q.chunks.pop_back();
        stolen = true;
      }
      found = true;
    }
    if (!found) break;
    if (obs_on) {
      if (stolen) job.steals.fetch_add(1, std::memory_order_relaxed);
      // Atomic decrement accounting: every published chunk is eventually
      // claimed (drained even after a guard trip), so the gauge returns to
      // its pre-job level no matter how jobs interleave.
      PoolObs().queue_depth.Add(-1.0);
      // Wait of this chunk between publication and claim; with a single
      // publication instant per job this is exactly time-to-first-touch.
      PoolObs().task_queue_us.RecordDouble(obs::NowMicros() -
                                           job.publish_ts_us);
    }
    for (std::size_t i = chunk.first; i < chunk.second; ++i) {
      if (job.guarded) {
        // A tripped guard stops claiming units; chunks are still drained so
        // every participant's scan terminates promptly.
        if (job.stop.load(std::memory_order_relaxed)) continue;
        if (job.checker != nullptr && !job.checker->Check().ok()) {
          job.stop.store(true, std::memory_order_relaxed);
          continue;
        }
        const double t0 = obs_on ? obs::NowMicros() : 0.0;
        try {
          (*job.body)(i);
          (*job.completed)[i] = 1;
          if (job.ordered != nullptr) job.ordered->Complete(i);
        } catch (const guard::Tripped&) {
          // The body abandoned the unit at a mid-unit check point; the
          // checker already recorded the trip status.
          job.stop.store(true, std::memory_order_relaxed);
        } catch (...) {
          std::lock_guard<std::mutex> lock(job.fail_mu);
          job.failures.push_back({i, guard::CurrentExceptionMessage()});
        }
        if (obs_on) {
          PoolObs().task_run_us.RecordDouble(obs::NowMicros() - t0);
          ++attempted;
        }
      } else {
        // Deterministic propagation: only run indices below the current
        // minimum failing index; on a throw, keep the exception iff it
        // lowers the minimum.
        if (i >= job.min_failed.load(std::memory_order_relaxed)) continue;
        const double t0 = obs_on ? obs::NowMicros() : 0.0;
        try {
          (*job.body)(i);
        } catch (...) {
          std::size_t cur = job.min_failed.load(std::memory_order_relaxed);
          while (i < cur &&
                 !job.min_failed.compare_exchange_weak(
                     cur, i, std::memory_order_relaxed)) {
          }
          std::lock_guard<std::mutex> lock(job.error_mu);
          if (i < job.error_index) {
            job.error_index = i;
            job.error = std::current_exception();
          }
        }
        if (obs_on) {
          PoolObs().task_run_us.RecordDouble(obs::NowMicros() - t0);
          ++attempted;
        }
      }
    }
  }
  if (obs_on && attempted != 0) {
    job.tasks_by_slot[home].fetch_add(attempted, std::memory_order_relaxed);
  }
  tls_running_pool = saved_pool;
}

// Publishes `job` (chunked over [0, n)), participates, and joins.
void Pool::RunJob(Job& job, std::size_t n) {
  const std::size_t participants = job.queues.size();
  // Several chunks per participant so stealing can rebalance uneven bodies;
  // capped at n so tiny loops stay one index per chunk. A caller-set
  // Options::max_chunk_units forces finer chunks for loops whose unit
  // costs shrink or vary wildly (shrinking-work fault shards).
  std::size_t num_chunks = std::min(n, participants * 4);
  if (max_chunk_units_ > 0) {
    num_chunks = std::min(
        n, std::max(num_chunks, (n + max_chunk_units_ - 1) / max_chunk_units_));
  }
  const std::size_t base = n / num_chunks;
  const std::size_t extra = n % num_chunks;
  std::size_t begin = 0;
  for (std::size_t c = 0; c < num_chunks; ++c) {
    const std::size_t size = base + (c < extra ? 1 : 0);
    job.queues[c % participants].chunks.emplace_back(begin, begin + size);
    begin += size;
  }
  job.obs_on = obs::Enabled();
  job.scope = obs::CurrentScope();
  if (job.obs_on) {
    job.publish_ts_us = obs::NowMicros();
    PoolObs().queue_depth.Add(static_cast<double>(num_chunks));
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &job;
    ++epoch_;
  }
  work_cv_.notify_all();
  RunChunks(job, participants - 1);  // the caller works the last home slot
  {
    // Retire the job first: joining happens under mu_, so from here the
    // worker set inside the job only shrinks.
    std::lock_guard<std::mutex> lock(mu_);
    job_ = nullptr;
  }
  {
    std::unique_lock<std::mutex> lock(job.done_mu);
    job.done_cv.wait(lock, [&] {
      return job.active.load(std::memory_order_acquire) == 0;
    });
  }
  if (job.obs_on) {
    // Publish the per-job accumulators. Name lookups are fine here: one
    // registry scan per job, not per chunk. Slot numbering matches homes
    // in RunChunks; the last slot is the calling thread.
    obs::Registry& reg = obs::Registry::Global();
    reg.GetCounter("exec.jobs").Add(1);
    const std::uint64_t steals = job.steals.load(std::memory_order_relaxed);
    if (steals != 0) reg.GetCounter("exec.steals").Add(steals);
    std::uint64_t total = 0;
    for (std::size_t w = 0; w < job.tasks_by_slot.size(); ++w) {
      const std::uint64_t t =
          job.tasks_by_slot[w].load(std::memory_order_relaxed);
      if (t == 0) continue;
      total += t;
      reg.GetCounter("exec.worker" + std::to_string(w) + ".tasks").Add(t);
    }
    reg.GetCounter("exec.tasks").Add(total);
  }
}

void Pool::ParallelFor(std::size_t n,
                       const std::function<void(std::size_t)>& body) {
  PFD_CHECK_MSG(tls_running_pool != this,
                "exec::Pool::ParallelFor re-entered from one of its own "
                "loop bodies");
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  Job job(workers_.size() + 1);
  job.body = &body;
  {
    // One job at a time: concurrent external callers queue here in mutex
    // acquisition order (see the contract in exec.hpp).
    std::lock_guard<std::mutex> gate(job_gate_);
    RunJob(job, n);
  }
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(job.error_mu);
    error = job.error;
  }
  if (error) std::rethrow_exception(error);
}

guard::RunStatus Pool::ParallelForGuarded(
    std::size_t n, const std::function<void(std::size_t)>& body,
    guard::Checker* checker,
    const std::function<void(std::size_t)>* ordered_done) {
  PFD_CHECK_MSG(tls_running_pool != this,
                "exec::Pool::ParallelForGuarded re-entered from one of its "
                "own loop bodies");
  guard::RunStatus status;
  status.total_units = n;
  if (n == 0) return status;

  std::vector<char> completed(n, 0);
  std::vector<guard::FailedUnit> failures;
  bool stopped = false;
  OrderedCommit ordered;
  ordered.hook = ordered_done;
  if (ordered_done != nullptr) ordered.done.assign(n, 0);

  if (workers_.empty() || n == 1) {
    // Plain loop on the caller; same per-unit semantics as the pooled path.
    for (std::size_t i = 0; i < n && !stopped; ++i) {
      if (checker != nullptr && !checker->Check().ok()) break;
      try {
        body(i);
        completed[i] = 1;
        ordered.Complete(i);
      } catch (const guard::Tripped&) {
        stopped = true;
      } catch (...) {
        failures.push_back({i, guard::CurrentExceptionMessage()});
      }
    }
  } else {
    Job job(workers_.size() + 1);
    job.body = &body;
    job.guarded = true;
    job.checker = checker;
    job.completed = &completed;
    if (ordered_done != nullptr) job.ordered = &ordered;
    {
      std::lock_guard<std::mutex> gate(job_gate_);
      RunJob(job, n);
    }
    failures = std::move(job.failures);
  }
  std::sort(failures.begin(), failures.end(),
            [](const guard::FailedUnit& a, const guard::FailedUnit& b) {
              return a.index < b.index;
            });

  // Quarantined units get one serial retry (in index order, on the calling
  // thread) before they are reported: transient failures — OOM pressure, a
  // failpoint's single shot — should not cost their unit's result.
  const bool obs_on = obs::Enabled();
  const bool flight_on = obs::FlightEnabled();
  if (obs_on && !failures.empty()) {
    obs::Registry::Global().GetCounter("guard.quarantined_units")
        .Add(failures.size());
  }
  if (flight_on) {
    for (const guard::FailedUnit& f : failures) {
      obs::RecordFlight(obs::FlightKind::kQuarantine, "exec.parallel_for",
                        "unit " + std::to_string(f.index) + ": " + f.what);
    }
  }
  for (guard::FailedUnit& f : failures) {
    if (checker != nullptr && !checker->Check().ok()) {
      status.failed_units.push_back(std::move(f));
      continue;
    }
    if (obs_on) obs::Registry::Global().GetCounter("guard.retries").Add(1);
    try {
      body(f.index);
      completed[f.index] = 1;
      ordered.Complete(f.index);
      if (obs_on) {
        obs::Registry::Global().GetCounter("guard.retry_successes").Add(1);
      }
      if (flight_on) {
        obs::RecordFlight(obs::FlightKind::kRetryOutcome, "exec.parallel_for",
                          "unit " + std::to_string(f.index) + ": success");
      }
    } catch (const guard::Tripped&) {
      // The retry itself hit a tripped guard; the original failure stands.
      if (flight_on) {
        obs::RecordFlight(
            obs::FlightKind::kRetryOutcome, "exec.parallel_for",
            "unit " + std::to_string(f.index) + ": abandoned (guard trip)");
      }
      status.failed_units.push_back(std::move(f));
    } catch (...) {
      f.what += "; retry: " + guard::CurrentExceptionMessage();
      if (flight_on) {
        obs::RecordFlight(obs::FlightKind::kRetryOutcome, "exec.parallel_for",
                          "unit " + std::to_string(f.index) +
                              ": failed again: " +
                              guard::CurrentExceptionMessage());
      }
      status.failed_units.push_back(std::move(f));
    }
  }

  status.completed.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (completed[i] != 0) status.completed.push_back(i);
  }
  if (checker != nullptr && checker->tripped()) {
    const guard::Status trip = checker->status();
    status.code = trip.code;
    status.message = trip.message;
  } else if (!status.failed_units.empty()) {
    status.code = guard::StatusCode::kPartialFailure;
    status.message = std::to_string(status.failed_units.size()) + " of " +
                     std::to_string(n) + " units failed";
  }
  return status;
}

void ParallelFor(const Options& options, std::size_t n,
                 const std::function<void(std::size_t)>& body) {
  Pool pool(options);
  pool.ParallelFor(n, body);
}

}  // namespace pfd::exec
