#include "exec/exec.hpp"

#include <atomic>
#include <cstdlib>
#include <deque>
#include <exception>
#include <utility>

#include "obs/trace.hpp"

namespace pfd::exec {

int ResolveThreads(const Options& options) {
  if (options.threads > 0) return options.threads;
  if (const char* env = std::getenv("PFD_THREADS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

std::uint64_t ShardSeed(std::uint64_t engine_seed,
                        std::uint64_t deterministic_seed,
                        std::uint64_t shard) {
  // splitmix64 finalizer over the combined inputs: adjacent shard indices
  // land far apart, and shard streams never collide with the engine seed
  // itself (shard + 1 offset).
  std::uint64_t z = engine_seed + (shard + 1) * 0x9e3779b97f4a7c15ULL +
                    deterministic_seed * 0xd1342543de82ef95ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// One ParallelFor invocation: per-participant chunk deques (own queue popped
// from the front, victims stolen from the back), a count of workers still
// inside the job, and the first captured exception. The Job lives on the
// caller's stack; the caller may only destroy it once `active` drops to
// zero, i.e. once every worker has left RunChunks — chunk bookkeeping alone
// is not enough, because a worker can still be scanning the (empty) queues
// after the last chunk completed.
struct Pool::Job {
  struct Queue {
    std::mutex mu;
    std::deque<std::pair<std::size_t, std::size_t>> chunks;  // [begin, end)
  };

  explicit Job(std::size_t participants) : queues(participants) {}

  const std::function<void(std::size_t)>* body = nullptr;
  std::vector<Queue> queues;
  std::atomic<int> active{0};  // workers inside RunChunks
  std::atomic<bool> failed{false};
  std::mutex error_mu;
  std::exception_ptr error;
  std::mutex done_mu;
  std::condition_variable done_cv;
};

Pool::Pool(const Options& options) : threads_(ResolveThreads(options)) {
  workers_.reserve(static_cast<std::size_t>(threads_ - 1));
  for (int w = 0; w + 1 < threads_; ++w) {
    workers_.emplace_back(&Pool::WorkerMain, this,
                          static_cast<std::size_t>(w));
  }
}

Pool::~Pool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void Pool::WorkerMain(std::size_t slot) {
  // Spans recorded by loop bodies on this thread buffer locally; the buffer
  // flushes into the installed trace sink when this worker exits (pool
  // shutdown) or on overflow.
  obs::ThreadTraceBuffer trace_buffer;
  std::uint64_t seen_epoch = 0;
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    // The epoch guard keeps a worker from re-entering a job it already
    // drained; joining the job (the `active` increment) happens under mu_,
    // so after the coordinator retires job_ no new worker can join and the
    // active count only falls.
    work_cv_.wait(lock, [&] {
      return shutdown_ || (job_ != nullptr && epoch_ != seen_epoch);
    });
    if (shutdown_) return;
    Job* job = job_;
    seen_epoch = epoch_;
    job->active.fetch_add(1, std::memory_order_relaxed);
    lock.unlock();
    RunChunks(*job, slot);
    {
      // Last one out notifies under done_mu: the coordinator's predicate
      // check holds the same mutex, so it cannot destroy the Job between
      // our decrement and the notify.
      std::lock_guard<std::mutex> done_lock(job->done_mu);
      if (job->active.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        job->done_cv.notify_all();
      }
    }
    lock.lock();
  }
}

void Pool::RunChunks(Job& job, std::size_t home) {
  const std::size_t participants = job.queues.size();
  while (true) {
    std::pair<std::size_t, std::size_t> chunk;
    bool found = false;
    for (std::size_t k = 0; k < participants && !found; ++k) {
      Job::Queue& q = job.queues[(home + k) % participants];
      std::lock_guard<std::mutex> lock(q.mu);
      if (q.chunks.empty()) continue;
      if (k == 0) {
        chunk = q.chunks.front();
        q.chunks.pop_front();
      } else {
        chunk = q.chunks.back();
        q.chunks.pop_back();
      }
      found = true;
    }
    if (!found) return;
    // After a failure the remaining chunks are still claimed, just not run
    // (drained), so every participant's scan terminates promptly.
    if (!job.failed.load(std::memory_order_relaxed)) {
      try {
        for (std::size_t i = chunk.first; i < chunk.second; ++i) {
          (*job.body)(i);
        }
      } catch (...) {
        job.failed.store(true, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(job.error_mu);
        if (!job.error) job.error = std::current_exception();
      }
    }
  }
}

void Pool::ParallelFor(std::size_t n,
                       const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  const std::size_t participants = workers_.size() + 1;
  Job job(participants);
  job.body = &body;
  // Several chunks per participant so stealing can rebalance uneven bodies;
  // capped at n so tiny loops stay one index per chunk.
  const std::size_t num_chunks = std::min(n, participants * 4);
  const std::size_t base = n / num_chunks;
  const std::size_t extra = n % num_chunks;
  std::size_t begin = 0;
  for (std::size_t c = 0; c < num_chunks; ++c) {
    const std::size_t size = base + (c < extra ? 1 : 0);
    job.queues[c % participants].chunks.emplace_back(begin, begin + size);
    begin += size;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &job;
    ++epoch_;
  }
  work_cv_.notify_all();
  RunChunks(job, participants - 1);  // the caller works the last home slot
  {
    // Retire the job first: joining happens under mu_, so from here the
    // worker set inside the job only shrinks.
    std::lock_guard<std::mutex> lock(mu_);
    job_ = nullptr;
  }
  {
    std::unique_lock<std::mutex> lock(job.done_mu);
    job.done_cv.wait(lock, [&] {
      return job.active.load(std::memory_order_acquire) == 0;
    });
  }
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(job.error_mu);
    error = job.error;
  }
  if (error) std::rethrow_exception(error);
}

void ParallelFor(const Options& options, std::size_t n,
                 const std::function<void(std::size_t)>& body) {
  Pool pool(options);
  pool.ParallelFor(n, body);
}

}  // namespace pfd::exec
