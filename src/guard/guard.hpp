// Robustness primitives shared by the engines: deadlines, cooperative
// cancellation, per-unit failure isolation, and a failpoint injection
// harness.
//
// The paper's flow is a long fault campaign — thousands of per-fault
// simulations and Monte Carlo power runs. A production campaign must
// degrade gracefully: a single bad work unit, a runaway simulation, or an
// impatient caller must never erase everything already computed. pfd::guard
// provides the vocabulary:
//
//   * StatusCode / Status — the error taxonomy every engine reports in.
//   * CancelToken — a shared flag a caller (or a SIGINT handler) flips to
//     stop a run at the next cooperative check point. RequestCancel is
//     async-signal-safe (lock-free atomic stores only).
//   * Limits / Checker — wall-clock deadline, relative wall budget, and a
//     simulated-cycle budget, checked cooperatively at shard/batch
//     boundaries (exec::Pool::ParallelForGuarded) and inside the engine
//     pattern loops. A tripped Checker is sticky: the first trip decides
//     the reported status.
//   * FailedUnit / RunStatus — the partial-result contract. A guarded run
//     always returns: completed unit indices are listed explicitly, failed
//     units are quarantined (and retried once serially) instead of
//     aborting the campaign, and the overall code says why anything is
//     missing.
//   * Failpoints — named injection points compiled into each engine stage
//     (see kEngineFailpoints), armed programmatically or via
//       PFD_FAILPOINTS=fault_sim.shard=throw@0,power.mc_batch=throw
//     so tests and CI can prove the isolation/retry/partial-result paths
//     with deterministic synthetic failures. Disarmed cost is one relaxed
//     atomic load per unit.
//
// Determinism contract: with no guard tripped and no failpoint armed,
// engine results are bit-identical across thread counts; with a tripped
// guard, the set of completed unit indices is reported explicitly.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace pfd::guard {

enum class StatusCode : std::uint8_t {
  kOk = 0,
  kCancelled,          // CancelToken flipped (caller, SIGINT, ...)
  kDeadlineExceeded,   // wall-clock deadline / max_wall_ms passed
  kBudgetExhausted,    // max_sim_cycles spent
  kPartialFailure,     // one or more units failed even after retry
};

const char* StatusCodeName(StatusCode code);

struct Status {
  StatusCode code = StatusCode::kOk;
  std::string message;

  bool ok() const { return code == StatusCode::kOk; }
};

// Shared cancellation flag. Copies observe the same state; RequestCancel is
// async-signal-safe, so a SIGINT handler may call it on a pre-built token.
class CancelToken {
 public:
  CancelToken();

  void RequestCancel() const;
  bool cancelled() const;
  // Milliseconds since RequestCancel, for cancellation-latency accounting;
  // 0 when never cancelled.
  double MsSinceRequest() const;

 private:
  struct State {
    std::atomic<bool> cancelled{false};
    std::atomic<std::int64_t> request_ns{0};
  };
  std::shared_ptr<State> state_;
};

// Cooperative run limits. Default-constructed Limits never trip.
struct Limits {
  // Absolute wall-clock deadline; unset = none.
  std::optional<std::chrono::steady_clock::time_point> deadline;
  CancelToken cancel;
  // Simulated machine cycles across all units; 0 = unlimited.
  std::uint64_t max_sim_cycles = 0;
  // Wall budget relative to Checker construction, ms; 0 = unlimited.
  double max_wall_ms = 0.0;
};

// Thrown by engine loops (via Checker::CheckOrThrow) to abandon the current
// work unit when a guard trips mid-unit. exec::Pool::ParallelForGuarded
// treats it as "unit not completed", never as a unit failure.
struct Tripped {
  Status status;
};

// Evaluates Limits at cooperative check points. Thread-safe; shared by all
// workers of a run (and across engine stages when the caller passes one
// checker through several requests, pooling the budgets). The first trip is
// sticky and decides status().
class Checker {
 public:
  explicit Checker(const Limits& limits);

  void AddSimCycles(std::uint64_t n) {
    sim_cycles_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t sim_cycles() const {
    return sim_cycles_.load(std::memory_order_relaxed);
  }

  // Evaluates the limits; records (and thereafter returns) the first trip.
  Status Check();
  // Check(), throwing Tripped{status} when not ok.
  void CheckOrThrow();

  bool tripped() const { return tripped_.load(std::memory_order_acquire); }
  // The sticky first-trip status (kOk while nothing tripped).
  Status status() const;

 private:
  void RecordTrip(StatusCode code, std::string message);

  Limits limits_;
  std::chrono::steady_clock::time_point start_;
  std::optional<std::chrono::steady_clock::time_point> deadline_;
  std::atomic<std::uint64_t> sim_cycles_{0};
  std::atomic<bool> tripped_{false};
  mutable std::mutex mu_;
  Status first_;
};

// Message of the in-flight exception; call only from a catch block. Used
// to turn quarantined units' exceptions into FailedUnit records.
std::string CurrentExceptionMessage();

// A work unit that threw (after its one serial retry).
struct FailedUnit {
  std::size_t index = 0;
  std::string what;
};

// Outcome of a guarded run: the partial-result contract every engine
// returns alongside its data.
struct RunStatus {
  StatusCode code = StatusCode::kOk;
  std::string message;
  std::vector<FailedUnit> failed_units;   // sorted by index
  std::size_t total_units = 0;
  std::vector<std::size_t> completed;     // sorted unit indices that finished

  bool ok() const { return code == StatusCode::kOk; }
  // True for the limit-trip codes (not kOk / kPartialFailure).
  bool tripped() const;
  // Folds a stage's status into a campaign-level one: the most severe code
  // wins (trip > partial failure > ok; first trip sticks), failed units are
  // carried over with `stage` prefixed to their messages, and the per-stage
  // completed sets are dropped (they only mean something per engine).
  void MergeFrom(const RunStatus& stage_status, std::string_view stage);
  // One line: "deadline exceeded: 3/17 units completed, 1 failed".
  std::string Describe() const;
};

// --- failpoints -------------------------------------------------------------

// Injection points compiled into the engine stages. Arm any of them with
// ArmFailpoint / PFD_FAILPOINTS to inject a deterministic synthetic failure.
inline constexpr const char* kEngineFailpoints[] = {
    "fault_sim.shard",        // one 63-fault lane group (parallel engine)
    "fault_sim.serial_fault", // one fault (serial engine)
    "pipeline.step3.trace",   // one per-fault controller trace extraction
    "pipeline.step4.decider", // one per-fault symbolic/gate SFR decision
    "power.mc_batch",         // one Monte Carlo 64-pattern batch
    "power.test_set_batch",   // one fixed-test-set 64-pattern batch
};

// Arms `name` with `spec`: "throw" (every hit throws), "throw@K" (only
// hit number K throws, 0-based, counted per failpoint since arming),
// "abort" / "abort@K" (the firing hit calls std::abort() — a simulated
// crash for the checkpoint kill-and-resume tests: no unwinding, no
// destructors, the process dies as if kill -9'd), or "flag" (non-throwing:
// instrumented code polls FailpointFlagged(name) and takes a
// deliberately-wrong branch — the xcheck kernel mutations). Re-arming
// a name resets its hit counter. Throws pfd::Error on a bad spec.
void ArmFailpoint(std::string_view name, std::string_view spec);
// Parses and arms a whole "name=spec,name=spec" list (the $PFD_FAILPOINTS
// syntax). Strict, all-or-nothing: throws pfd::Error — arming nothing — on
// an empty entry, a missing '=' or name, a bad spec (anything but "throw",
// "throw@K", "abort", "abort@K", or "flag": "@0", "throw@", non-digit or
// overflowing K, trailing garbage), or a point name appearing twice in one
// list.
void ArmFailpoints(std::string_view list);
// Parses $PFD_FAILPOINTS entry by entry through the strict parser;
// malformed entries are reported on stderr and skipped (the env var must
// never crash a run at static-init time). Called automatically before
// main; call again after changing the variable programmatically.
void ArmFailpointsFromEnv();
// Disarms everything and zeroes all hit counters.
void ClearFailpoints();
// Hits observed at `name` since it was last armed (0 when never armed).
std::uint64_t FailpointHits(std::string_view name);

namespace detail {
extern std::atomic<int> g_armed_failpoints;
void MaybeFailSlow(const char* name);
bool FailpointFlaggedSlow(const char* name);
}  // namespace detail

// True when at least one failpoint (of any spec) is armed. One relaxed
// atomic load; instrumented hot paths use it to skip per-point lookups.
inline bool AnyFailpointsArmed() {
  return detail::g_armed_failpoints.load(std::memory_order_relaxed) != 0;
}

// The per-unit check each engine stage compiles in. Disarmed cost: one
// relaxed atomic load. Armed: counts the hit and throws pfd::Error when the
// spec fires. A name armed with "flag" counts the hit but never throws.
inline void MaybeFail(const char* name) {
  if (!AnyFailpointsArmed()) return;
  detail::MaybeFailSlow(name);
}

// The poll a "flag" failpoint site compiles in: true only while `name` is
// armed with spec "flag" (a "throw" arming does not flag, and vice versa a
// flag arming never throws). Each poll that observes the armed flag counts
// as a hit. Disarmed cost: one relaxed atomic load.
inline bool FailpointFlagged(const char* name) {
  if (!AnyFailpointsArmed()) return false;
  return detail::FailpointFlaggedSlow(name);
}

}  // namespace pfd::guard
