#include "guard/guard.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>
#include <utility>

#include "base/error.hpp"
#include "obs/flight.hpp"
#include "obs/obs.hpp"

namespace pfd::guard {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kCancelled: return "cancelled";
    case StatusCode::kDeadlineExceeded: return "deadline-exceeded";
    case StatusCode::kBudgetExhausted: return "budget-exhausted";
    case StatusCode::kPartialFailure: return "partial-failure";
  }
  return "?";
}

CancelToken::CancelToken() : state_(std::make_shared<State>()) {}

void CancelToken::RequestCancel() const {
  // Async-signal-safe: no locks, no allocation. clock_gettime (behind
  // steady_clock::now) is on the POSIX async-signal-safe list.
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  std::int64_t expected = 0;
  state_->request_ns.compare_exchange_strong(
      expected,
      std::chrono::duration_cast<std::chrono::nanoseconds>(now).count(),
      std::memory_order_relaxed);
  state_->cancelled.store(true, std::memory_order_release);
}

bool CancelToken::cancelled() const {
  return state_->cancelled.load(std::memory_order_acquire);
}

double CancelToken::MsSinceRequest() const {
  const std::int64_t t0 = state_->request_ns.load(std::memory_order_relaxed);
  if (t0 == 0) return 0.0;
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  const std::int64_t now_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(now).count();
  return static_cast<double>(now_ns - t0) / 1e6;
}

Checker::Checker(const Limits& limits)
    : limits_(limits), start_(std::chrono::steady_clock::now()) {
  deadline_ = limits_.deadline;
  if (limits_.max_wall_ms > 0.0) {
    const auto budget_end =
        start_ + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                     std::chrono::duration<double, std::milli>(
                         limits_.max_wall_ms));
    if (!deadline_ || budget_end < *deadline_) deadline_ = budget_end;
  }
}

Status Checker::Check() {
  if (tripped_.load(std::memory_order_acquire)) return status();
  if (limits_.cancel.cancelled()) {
    // First observation of the cancel request: record how long the run took
    // to reach a cooperative check point.
    const double latency_ms = limits_.cancel.MsSinceRequest();
    if (obs::Enabled()) {
      obs::Registry::Global().GetGauge("guard.cancel_latency_ms")
          .Set(latency_ms);
    }
    if (obs::FlightEnabled() && !tripped_.load(std::memory_order_acquire)) {
      char buf[48];
      std::snprintf(buf, sizeof buf, "latency_ms=%.3f", latency_ms);
      obs::RecordFlight(obs::FlightKind::kCancel, "guard.cancel", buf);
    }
    RecordTrip(StatusCode::kCancelled, "run cancelled");
    return status();
  }
  if (deadline_ && std::chrono::steady_clock::now() >= *deadline_) {
    RecordTrip(StatusCode::kDeadlineExceeded, "deadline exceeded");
    return status();
  }
  if (limits_.max_sim_cycles > 0 &&
      sim_cycles_.load(std::memory_order_relaxed) >= limits_.max_sim_cycles) {
    RecordTrip(StatusCode::kBudgetExhausted,
               "simulation cycle budget exhausted (" +
                   std::to_string(limits_.max_sim_cycles) + " cycles)");
    return status();
  }
  return {};
}

void Checker::CheckOrThrow() {
  Status s = Check();
  if (!s.ok()) throw Tripped{std::move(s)};
}

Status Checker::status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return first_;
}

void Checker::RecordTrip(StatusCode code, std::string message) {
  std::lock_guard<std::mutex> lock(mu_);
  if (first_.ok()) {
    first_.code = code;
    first_.message = std::move(message);
    if (obs::Enabled()) {
      obs::Registry::Global().GetCounter("guard.trips").Add(1);
    }
    if (obs::FlightEnabled()) {
      obs::RecordFlight(obs::FlightKind::kGuardTrip, "guard.checker",
                        std::string(StatusCodeName(code)) + ": " +
                            first_.message);
    }
  }
  tripped_.store(true, std::memory_order_release);
}

std::string CurrentExceptionMessage() {
  try {
    throw;
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown exception";
  }
}

bool RunStatus::tripped() const {
  return code == StatusCode::kCancelled ||
         code == StatusCode::kDeadlineExceeded ||
         code == StatusCode::kBudgetExhausted;
}

namespace {

// Severity order for merging stage statuses: any limit trip outranks a
// partial failure, which outranks ok; among trips the first merged wins.
int Severity(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return 0;
    case StatusCode::kPartialFailure: return 1;
    case StatusCode::kCancelled:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kBudgetExhausted: return 2;
  }
  return 0;
}

}  // namespace

void RunStatus::MergeFrom(const RunStatus& stage_status,
                          std::string_view stage) {
  for (const FailedUnit& f : stage_status.failed_units) {
    failed_units.push_back(
        {f.index, std::string(stage) + ": " + f.what});
  }
  if (Severity(stage_status.code) > Severity(code)) {
    code = stage_status.code;
    message = std::string(stage) + ": " + stage_status.message;
  } else if (code == StatusCode::kOk && !failed_units.empty()) {
    code = StatusCode::kPartialFailure;
    message = std::to_string(failed_units.size()) + " unit(s) failed";
  }
}

std::string RunStatus::Describe() const {
  std::ostringstream os;
  os << StatusCodeName(code);
  if (!message.empty()) os << ": " << message;
  if (total_units > 0) {
    os << " (" << completed.size() << "/" << total_units
       << " units completed";
    if (!failed_units.empty()) os << ", " << failed_units.size() << " failed";
    os << ")";
  } else if (!failed_units.empty()) {
    os << " (" << failed_units.size() << " unit(s) failed)";
  }
  return os.str();
}

// --- failpoints -------------------------------------------------------------

namespace detail {
std::atomic<int> g_armed_failpoints{0};
}  // namespace detail

namespace {

struct FailpointState {
  bool armed = false;
  bool always = false;       // "throw"/"abort": every hit
  bool flag = false;         // "flag": non-throwing, polled via FailpointFlagged
  bool abort_mode = false;   // "abort"/"abort@K": std::abort() instead of throw
  std::uint64_t fire_at = 0; // "throw@K"/"abort@K": hit number K (0-based)
  std::uint64_t hits = 0;
};

std::mutex& FailpointMu() {
  static std::mutex mu;
  return mu;
}

std::map<std::string, FailpointState, std::less<>>& Failpoints() {
  static std::map<std::string, FailpointState, std::less<>> points;
  return points;
}

void RecountArmed() {
  int armed = 0;
  for (const auto& [name, st] : Failpoints()) {
    if (st.armed) ++armed;
  }
  detail::g_armed_failpoints.store(armed, std::memory_order_relaxed);
}

// Parses the "@K" suffix of "<verb>@K"; returns false on an empty or
// non-digit K, or a K that overflows 64 bits.
bool ParseFireAt(std::string_view num, FailpointState& st) {
  if (num.empty()) return false;
  std::uint64_t k = 0;
  for (char c : num) {
    if (c < '0' || c > '9') return false;
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (k > (~0ULL - digit) / 10) return false;  // K overflows
    k = k * 10 + digit;
  }
  st.armed = true;
  st.always = false;
  st.fire_at = k;
  return true;
}

// Parses "throw" / "throw@K" / "abort" / "abort@K" / "flag" into `st`;
// returns false on malformed input: anything but the exact keywords, an
// empty or non-digit K, trailing garbage, or a K that overflows 64 bits.
// "abort" variants call std::abort() at the firing hit — a crash-injection
// primitive for the checkpoint kill-and-resume tests, where a clean throw
// would let destructors and catch blocks tidy up the very state the test
// wants torn.
bool ParseSpec(std::string_view spec, FailpointState& st) {
  constexpr std::string_view kThrow = "throw";
  constexpr std::string_view kAbort = "abort";
  if (spec == kThrow) {
    st.armed = true;
    st.always = true;
    return true;
  }
  if (spec == kAbort) {
    st.armed = true;
    st.always = true;
    st.abort_mode = true;
    return true;
  }
  if (spec == "flag") {
    st.armed = true;
    st.flag = true;
    return true;
  }
  if (spec.size() > kThrow.size() + 1 &&
      spec.substr(0, kThrow.size()) == kThrow &&
      spec[kThrow.size()] == '@') {
    return ParseFireAt(spec.substr(kThrow.size() + 1), st);
  }
  if (spec.size() > kAbort.size() + 1 &&
      spec.substr(0, kAbort.size()) == kAbort &&
      spec[kAbort.size()] == '@') {
    if (!ParseFireAt(spec.substr(kAbort.size() + 1), st)) return false;
    st.abort_mode = true;
    return true;
  }
  return false;
}

}  // namespace

void ArmFailpoint(std::string_view name, std::string_view spec) {
  FailpointState st;
  PFD_CHECK_MSG(!name.empty(), "empty failpoint name");
  PFD_CHECK_MSG(ParseSpec(spec, st),
                "bad failpoint spec '" + std::string(spec) +
                    "' (expected 'throw', 'throw@K', 'abort', 'abort@K', or 'flag')");
  std::lock_guard<std::mutex> lock(FailpointMu());
  Failpoints()[std::string(name)] = st;
  RecountArmed();
}

void ArmFailpoints(std::string_view list) {
  // Parse the whole list before touching any global state: a malformed
  // entry (or a duplicate name) rejects the list as a unit, so a typo can
  // never half-arm a failpoint configuration.
  std::vector<std::pair<std::string, FailpointState>> parsed;
  std::string_view rest(list);
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    const std::string_view entry = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view()
                                           : rest.substr(comma + 1);
    const std::string quoted = "'" + std::string(entry) + "'";
    PFD_CHECK_MSG(!entry.empty(), "empty failpoint entry in list");
    const std::size_t eq = entry.find('=');
    PFD_CHECK_MSG(eq != std::string_view::npos,
                  "failpoint entry " + quoted + " has no '='");
    PFD_CHECK_MSG(eq != 0, "failpoint entry " + quoted + " has no name");
    const std::string_view name = entry.substr(0, eq);
    FailpointState st;
    PFD_CHECK_MSG(ParseSpec(entry.substr(eq + 1), st),
                  "bad failpoint spec in " + quoted +
                      " (expected 'throw', 'throw@K', 'abort', 'abort@K', or 'flag')");
    for (const auto& [seen, unused] : parsed) {
      PFD_CHECK_MSG(seen != name, "duplicate failpoint name '" +
                                      std::string(name) + "' in list");
    }
    parsed.emplace_back(std::string(name), st);
  }
  std::lock_guard<std::mutex> lock(FailpointMu());
  for (auto& [name, st] : parsed) Failpoints()[name] = st;
  RecountArmed();
}

void ArmFailpointsFromEnv() {
  const char* env = std::getenv("PFD_FAILPOINTS");
  if (env == nullptr || *env == '\0') return;
  // Per-entry tolerance: the variable reaches this code before main, so a
  // typo in one entry must not crash every binary in the environment (and
  // should still arm the well-formed entries). Each entry goes through the
  // strict parser individually.
  std::string_view rest(env);
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    const std::string_view entry = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view()
                                           : rest.substr(comma + 1);
    try {
      ArmFailpoints(entry);
    } catch (const pfd::Error& e) {
      std::fprintf(stderr, "PFD_FAILPOINTS: ignoring malformed entry: %s\n",
                   e.what());
    }
  }
}

void ClearFailpoints() {
  std::lock_guard<std::mutex> lock(FailpointMu());
  Failpoints().clear();
  RecountArmed();
}

std::uint64_t FailpointHits(std::string_view name) {
  std::lock_guard<std::mutex> lock(FailpointMu());
  const auto it = Failpoints().find(name);
  return it == Failpoints().end() ? 0 : it->second.hits;
}

namespace detail {

void MaybeFailSlow(const char* name) {
  bool fire = false;
  bool abort_mode = false;
  {
    std::lock_guard<std::mutex> lock(FailpointMu());
    const auto it = Failpoints().find(std::string_view(name));
    if (it == Failpoints().end() || !it->second.armed) return;
    FailpointState& st = it->second;
    fire = !st.flag && (st.always || st.hits == st.fire_at);
    abort_mode = st.abort_mode;
    ++st.hits;
  }
  if (fire) {
    if (obs::Enabled()) {
      obs::Registry::Global().GetCounter("guard.failpoint_fires").Add(1);
    }
    if (obs::FlightEnabled()) {
      obs::RecordFlight(obs::FlightKind::kFailpointFire, name,
                        abort_mode ? "abort" : "fired");
    }
    if (abort_mode) {
      // Simulated crash: no unwinding, no destructors — the process dies
      // here just as it would on kill -9 (modulo the stdio flush the
      // checkpoint journal already forces per record).
      std::fprintf(stderr, "pfd: failpoint '%s' aborting process\n", name);
      std::abort();
    }
    throw pfd::Error(std::string("failpoint '") + name + "' fired");
  }
}

bool FailpointFlaggedSlow(const char* name) {
  std::lock_guard<std::mutex> lock(FailpointMu());
  const auto it = Failpoints().find(std::string_view(name));
  if (it == Failpoints().end() || !it->second.armed || !it->second.flag) {
    return false;
  }
  ++it->second.hits;
  return true;
}

// Arms from $PFD_FAILPOINTS before main so a CI-wide variable reaches every
// engine without per-binary plumbing. This TU is always linked: the engines
// reference MaybeFailSlow.
struct EnvArmer {
  EnvArmer() { ArmFailpointsFromEnv(); }
} g_env_armer;

}  // namespace detail

}  // namespace pfd::guard
