#include "base/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <string>

#include "base/error.hpp"
#include "base/logic.hpp"
#include "base/parse.hpp"

namespace pfd::simd {

namespace {

// -1 = not forced; otherwise a Backend value. Written by ForceBackend
// (flag parsing, single-threaded) but read from any worker constructing a
// simulator, hence atomic.
std::atomic<int> g_forced{-1};

Backend ResolveAuto() {
  if (Available(Backend::kAvx512)) return Backend::kAvx512;
  if (Available(Backend::kAvx2)) return Backend::kAvx2;
  return Backend::kScalar;
}

Backend ResolveFromEnv() {
  const char* env = std::getenv("PFD_SIMD");
  if (env == nullptr || *env == '\0' || std::string_view(env) == "auto") {
    return ResolveAuto();
  }
  const Backend b = ParseBackend(env);
  if (!Available(b)) {
    throw Error(std::string("PFD_SIMD=") + env + " is not available " +
                (CompiledWith(b) ? "(CPU lacks the instruction set)"
                                 : "(not compiled into this binary)"));
  }
  return b;
}

}  // namespace

const char* BackendName(Backend b) {
  switch (b) {
    case Backend::kScalar: return "scalar";
    case Backend::kAvx2: return "avx2";
    case Backend::kAvx512: return "avx512";
  }
  return "?";
}

Backend ParseBackend(std::string_view name) {
  if (name == "scalar") return Backend::kScalar;
  if (name == "avx2") return Backend::kAvx2;
  if (name == "avx512") return Backend::kAvx512;
  throw Error("unknown SIMD backend '" + std::string(name) +
              "' (expected auto|scalar|avx2|avx512)");
}

bool CompiledWith(Backend b) {
#if defined(__GNUC__) && defined(__x86_64__)
  (void)b;
  return true;  // the kernel TU builds all three via target attributes
#else
  return b == Backend::kScalar;
#endif
}

bool CpuSupports(Backend b) {
  switch (b) {
    case Backend::kScalar: return true;
#if defined(__GNUC__) && defined(__x86_64__)
    case Backend::kAvx2: return __builtin_cpu_supports("avx2") != 0;
    case Backend::kAvx512: return __builtin_cpu_supports("avx512f") != 0;
#else
    case Backend::kAvx2:
    case Backend::kAvx512: return false;
#endif
  }
  return false;
}

bool Available(Backend b) { return CompiledWith(b) && CpuSupports(b); }

Backend Active() {
  const int forced = g_forced.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<Backend>(forced);
  // Resolved once; PFD_SIMD errors surface on the first simulator
  // construction (or explicit Active() probe), not at process start.
  static const Backend env_backend = ResolveFromEnv();
  return env_backend;
}

void ForceBackend(Backend b) {
  if (!Available(b)) {
    throw Error(std::string("SIMD backend '") + BackendName(b) +
                "' is not available " +
                (CompiledWith(b) ? "(CPU lacks the instruction set)"
                                 : "(not compiled into this binary)"));
  }
  g_forced.store(static_cast<int>(b), std::memory_order_relaxed);
}

void ForceBackendName(std::string_view name) {
  if (name == "auto") {
    g_forced.store(-1, std::memory_order_relaxed);
    return;
  }
  ForceBackend(ParseBackend(name));
}

int NaturalLaneWords(Backend b) {
  switch (b) {
    case Backend::kScalar: return 1;
    case Backend::kAvx2: return 4;
    case Backend::kAvx512: return 8;
  }
  return 1;
}

namespace {

int LanesToWords(std::uint64_t lanes, const char* what) {
  switch (lanes) {
    case 64: return 1;
    case 256: return 4;
    case 512: return 8;
    default:
      throw Error(std::string(what) + " must be 64, 256 or 512 (got " +
                  std::to_string(lanes) + ")");
  }
}

}  // namespace

int ResolveLaneWords(int lanes_request) {
  if (lanes_request != 0) {
    return LanesToWords(static_cast<std::uint64_t>(lanes_request), "--lanes");
  }
  const char* env = std::getenv("PFD_LANES");
  if (env != nullptr && *env != '\0' && std::string_view(env) != "auto") {
    return LanesToWords(ParseUint64Flag("PFD_LANES", env), "PFD_LANES");
  }
  return NaturalLaneWords(Active());
}

bool LaneWidthPinnedByEnv() {
  const char* env = std::getenv("PFD_LANES");
  return env != nullptr && *env != '\0' && std::string_view(env) != "auto";
}

}  // namespace pfd::simd
