// Three-valued (0 / 1 / X) logic primitives.
//
// The gate-level simulators operate on 64-lane packed words (`Word3`), where
// each bit position is an independent simulation lane (either an independent
// test pattern or an independent faulty machine, depending on the engine).
// A lane is represented by two bits spread across the `val` and `known`
// words:
//
//   known = 1, val = v  ->  the lane carries logic value v
//   known = 0           ->  the lane carries X (unknown)
//
// Canonical form: every unknown lane has its `val` bit cleared. All
// operations below produce canonical outputs given canonical inputs, and
// `IsCanonical` lets tests assert it.
//
// X semantics follow standard pessimistic ternary logic (as used by
// gate-level fault simulators such as the GENTEST tool the paper relies on):
// a controlling value forces the output even if the other input is X; an
// X select on a mux yields a known output only when both data inputs agree.
#pragma once

#include <array>
#include <cstdint>

namespace pfd {

// Scalar ternary logic value, used at API boundaries and in tests.
enum class Trit : std::uint8_t { kZero = 0, kOne = 1, kX = 2 };

// 64 lanes of ternary values. Value-semantic POD.
struct Word3 {
  std::uint64_t val = 0;
  std::uint64_t known = 0;

  friend bool operator==(const Word3&, const Word3&) = default;
};

inline constexpr Word3 kAllZero{0, ~0ULL};
inline constexpr Word3 kAllOne{~0ULL, ~0ULL};
inline constexpr Word3 kAllX{0, 0};

constexpr bool IsCanonical(Word3 w) { return (w.val & ~w.known) == 0; }

// Broadcasts a scalar value to all 64 lanes.
constexpr Word3 Splat(Trit t) {
  switch (t) {
    case Trit::kZero: return kAllZero;
    case Trit::kOne: return kAllOne;
    default: return kAllX;
  }
}

// Reads one lane back out as a scalar.
constexpr Trit GetLane(Word3 w, int lane) {
  const std::uint64_t bit = 1ULL << lane;
  if ((w.known & bit) == 0) return Trit::kX;
  return (w.val & bit) != 0 ? Trit::kOne : Trit::kZero;
}

// Sets one lane to a scalar value, preserving canonical form.
constexpr Word3 SetLane(Word3 w, int lane, Trit t) {
  const std::uint64_t bit = 1ULL << lane;
  w.val &= ~bit;
  w.known &= ~bit;
  if (t != Trit::kX) {
    w.known |= bit;
    if (t == Trit::kOne) w.val |= bit;
  }
  return w;
}

constexpr Word3 Not3(Word3 a) { return {a.known & ~a.val, a.known}; }

constexpr Word3 And3(Word3 a, Word3 b) {
  const std::uint64_t known = (a.known & b.known) | (a.known & ~a.val) |
                              (b.known & ~b.val);
  return {a.val & b.val, known};
}

constexpr Word3 Or3(Word3 a, Word3 b) {
  // A known-1 on either side dominates; canonical form guarantees val bits
  // are only set on known lanes.
  const std::uint64_t known = (a.known & b.known) | a.val | b.val;
  return {a.val | b.val, known};
}

constexpr Word3 Xor3(Word3 a, Word3 b) {
  const std::uint64_t known = a.known & b.known;
  return {(a.val ^ b.val) & known, known};
}

constexpr Word3 Nand3(Word3 a, Word3 b) { return Not3(And3(a, b)); }
constexpr Word3 Nor3(Word3 a, Word3 b) { return Not3(Or3(a, b)); }
constexpr Word3 Xnor3(Word3 a, Word3 b) { return Not3(Xor3(a, b)); }

// 2:1 multiplexer: returns `a` where sel==0, `b` where sel==1. Where the
// select is X, the output is known only if both data inputs are known and
// agree.
constexpr Word3 Mux3(Word3 sel, Word3 a, Word3 b) {
  const std::uint64_t pick_a = sel.known & ~sel.val;
  const std::uint64_t pick_b = sel.known & sel.val;
  const std::uint64_t agree = ~sel.known & a.known & b.known & ~(a.val ^ b.val);
  const std::uint64_t known = (pick_a & a.known) | (pick_b & b.known) | agree;
  const std::uint64_t val =
      ((pick_a & a.val) | (pick_b & b.val) | (agree & a.val)) & known;
  return {val, known};
}

// Scalar helpers (implemented on 1 lane of the word ops so the two agree by
// construction).
constexpr Trit Not3(Trit a) { return GetLane(Not3(Splat(a)), 0); }
constexpr Trit And3(Trit a, Trit b) {
  return GetLane(And3(Splat(a), Splat(b)), 0);
}
constexpr Trit Or3(Trit a, Trit b) {
  return GetLane(Or3(Splat(a), Splat(b)), 0);
}
constexpr Trit Xor3(Trit a, Trit b) {
  return GetLane(Xor3(Splat(a), Splat(b)), 0);
}
constexpr Trit Mux3(Trit s, Trit a, Trit b) {
  return GetLane(Mux3(Splat(s), Splat(a), Splat(b)), 0);
}

constexpr char TritChar(Trit t) {
  return t == Trit::kZero ? '0' : (t == Trit::kOne ? '1' : 'X');
}

// --- lane widening -----------------------------------------------------------
//
// The simulators are width-generic: a machine simulates 64 * lane_words
// lanes, stored as `lane_words` independent Word3s per gate evaluated in
// lockstep (every ternary operator above is pure bitwise per 64-bit word,
// so a W-lane machine is exactly W/64 64-lane machines marching together).
// Lane l lives in word l/64, bit l%64. Width is a runtime property of each
// simulator; these constants bound it.

inline constexpr int kLaneWordBits = 64;
inline constexpr int kMaxLaneWords = 8;  // widest kernel: 512 lanes (AVX-512)
inline constexpr int kMaxLanes = kLaneWordBits * kMaxLaneWords;

// A width-generic lane set: one bit per lane, kMaxLaneWords words. APIs
// taking a LaneMask ignore the words beyond the target simulator's width,
// so kAllLanes means "every lane" at any width — never spell a lane mask
// as a raw ~0ULL / uint64_t literal outside this header (a 64-bit literal
// silently truncates to the first lane word; CI lints for it).
struct LaneMask {
  std::array<std::uint64_t, kMaxLaneWords> w{};

  static constexpr LaneMask All() {
    LaneMask m;
    for (auto& word : m.w) word = ~0ULL;
    return m;
  }
  // The mask selecting exactly `lane` (0 <= lane < kMaxLanes).
  static constexpr LaneMask Lane(int lane) {
    LaneMask m;
    m.w[lane / kLaneWordBits] = 1ULL << (lane % kLaneWordBits);
    return m;
  }

  constexpr std::uint64_t word(int i) const { return w[i]; }
  constexpr bool any() const {
    for (const auto word : w) {
      if (word != 0) return true;
    }
    return false;
  }

  friend bool operator==(const LaneMask&, const LaneMask&) = default;
};

inline constexpr LaneMask kAllLanes = LaneMask::All();
inline constexpr LaneMask kNoLanes{};

}  // namespace pfd
