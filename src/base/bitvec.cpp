#include "base/bitvec.hpp"

namespace pfd {

namespace {
void CheckSameWidth(const BitVec& a, const BitVec& b) {
  PFD_CHECK_MSG(a.width() == b.width(), "BitVec width mismatch");
}
}  // namespace

std::string BitVec::ToString() const {
  std::string s = std::to_string(width_) + "'b";
  for (int i = width_ - 1; i >= 0; --i) {
    s += bit(i) ? '1' : '0';
  }
  return s;
}

BitVec Add(const BitVec& a, const BitVec& b) {
  CheckSameWidth(a, b);
  return {a.width(), a.value() + b.value()};
}

BitVec Sub(const BitVec& a, const BitVec& b) {
  CheckSameWidth(a, b);
  return {a.width(), a.value() - b.value()};
}

BitVec Mul(const BitVec& a, const BitVec& b) {
  CheckSameWidth(a, b);
  return {a.width(), a.value() * b.value()};
}

BitVec And(const BitVec& a, const BitVec& b) {
  CheckSameWidth(a, b);
  return {a.width(), a.value() & b.value()};
}

BitVec Or(const BitVec& a, const BitVec& b) {
  CheckSameWidth(a, b);
  return {a.width(), a.value() | b.value()};
}

BitVec Xor(const BitVec& a, const BitVec& b) {
  CheckSameWidth(a, b);
  return {a.width(), a.value() ^ b.value()};
}

BitVec Not(const BitVec& a) { return {a.width(), ~a.value()}; }

BitVec LessThan(const BitVec& a, const BitVec& b) {
  CheckSameWidth(a, b);
  return {1, a.value() < b.value() ? 1U : 0U};
}

}  // namespace pfd
