// Runtime SIMD backend selection for the lane-widened simulation kernels.
//
// The settle kernels (logicsim/kernels.*) are compiled three times in one
// translation unit: a portable scalar build, and AVX2 / AVX-512 builds via
// per-function `__attribute__((target(...)))` wrappers around always-inline
// cores. Nothing outside those wrapper functions is compiled with extended
// ISAs, so the binary stays runnable on any x86-64 (and non-x86) host; the
// wrappers are only ever *called* after the CPUID checks here pass.
//
// Resolution order for the active backend:
//   1. ForceBackend() — the `pfdtool --simd <name>` flag;
//   2. the PFD_SIMD environment variable (auto|scalar|avx2|avx512);
//   3. "auto": the best backend this binary was compiled with AND the
//      running CPU supports.
// Requesting a backend that is unavailable (not compiled in, or CPUID says
// no) is a hard pfd::Error, never a silent fallback — a CI leg pinning
// PFD_SIMD=avx512 must fail loudly on a machine without AVX-512 rather
// than quietly measure the scalar path.
//
// Lane-width resolution follows the backend: "auto" lanes pick the width
// the active backend can retire in one vector op (scalar 64, AVX2 256,
// AVX-512 512). Every {backend, width} combination is valid — PFD_SIMD=
// scalar with 512 lanes runs the portable 8-word loops — and all of them
// produce bit-identical results; only throughput differs.
#pragma once

#include <cstdint>
#include <string_view>

namespace pfd::simd {

enum class Backend : std::uint8_t { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

const char* BackendName(Backend b);
// "scalar" / "avx2" / "avx512"; anything else throws pfd::Error.
Backend ParseBackend(std::string_view name);

// This binary carries kernels for `b` (toolchain/arch support at build).
bool CompiledWith(Backend b);
// The running CPU can execute `b`'s kernels.
bool CpuSupports(Backend b);
bool Available(Backend b);

// The process-wide active backend (see resolution order above). Resolved
// once, on first use; throws pfd::Error if PFD_SIMD names an unavailable
// or unknown backend.
Backend Active();

// Overrides the environment/auto resolution (the --simd flag). Throws
// pfd::Error when `b` is unavailable. Call before any simulator exists;
// later constructions pick up the forced backend.
void ForceBackend(Backend b);
// Parses and forces in one step; "auto" re-enables auto/env resolution.
void ForceBackendName(std::string_view name);

// Lane-width resolution, in 64-bit lane words (1 = 64 lanes, 4 = 256,
// 8 = 512). `lanes_request` is a lane count from --lanes (0 = auto); auto
// consults PFD_LANES, then the active backend's natural width. Any value
// outside {0, 64, 256, 512} throws pfd::Error.
int ResolveLaneWords(int lanes_request);
// True when PFD_LANES carries an explicit width (set, non-empty, not
// "auto"): engines whose auto policy stays narrow still honour it.
bool LaneWidthPinnedByEnv();
// The backend's one-vector-op width: scalar 1, AVX2 4, AVX-512 8.
int NaturalLaneWords(Backend b);

}  // namespace pfd::simd
