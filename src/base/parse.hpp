// Strict numeric parsing for CLI flags and environment variables.
//
// std::atoi / std::strtoull silently turn garbage into 0 and wrap negative
// or overflowing values into huge unsigned numbers — "--max-cycles -1"
// becoming an 18-quintillion-cycle budget makes a typo look like an
// unlimited run. These helpers mirror the strict $PFD_THREADS contract from
// exec::ResolveThreads: the whole token must parse, the value must be in
// range, and anything else throws pfd::Error (which the tools map to exit
// code 1).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>

#include "base/error.hpp"

namespace pfd {

// Enumerated-choice flag: the token must equal one of `choices` exactly
// (case-sensitive — CLI vocabularies are lowercase by convention here);
// anything else throws pfd::Error listing the legal values. Returns the
// matched choice so callers can hand it to an enum parser without
// re-validating.
inline std::string_view ParseChoiceFlag(
    std::string_view flag, std::string_view text,
    std::initializer_list<std::string_view> choices) {
  for (const std::string_view c : choices) {
    if (text == c) return c;
  }
  std::string legal;
  for (const std::string_view c : choices) {
    if (!legal.empty()) legal += ", ";
    legal += std::string(c);
  }
  throw Error(std::string(flag) + "='" + std::string(text) +
              "' is not one of: " + legal);
}

// Non-negative decimal integer, digits only (no sign, no whitespace, no
// trailing garbage), rejecting values that overflow 64 bits. `flag` names
// the offending option in the error message.
inline std::uint64_t ParseUint64Flag(std::string_view flag,
                                     std::string_view text) {
  const auto fail = [&]() {
    throw Error(std::string(flag) + "='" + std::string(text) +
                "' is not a non-negative integer");
  };
  if (text.empty()) fail();
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') fail();
    const auto digit = static_cast<std::uint64_t>(c - '0');
    if (value > (~0ULL - digit) / 10) fail();  // would overflow
    value = value * 10 + digit;
  }
  return value;
}

// Like ParseUint64Flag, additionally rejecting values above `max`.
inline std::uint64_t ParseUint64FlagInRange(std::string_view flag,
                                            std::string_view text,
                                            std::uint64_t max) {
  const std::uint64_t value = ParseUint64Flag(flag, text);
  if (value > max) {
    throw Error(std::string(flag) + "='" + std::string(text) +
                "' exceeds the maximum of " + std::to_string(max));
  }
  return value;
}

// File-path flag value. Paths carry almost any byte, so the only rejected
// shapes are the ones that are always operator error: an empty token (a
// stray "--checkpoint" eating the next flag) and a token that itself looks
// like a flag ("--checkpoint --resume" leaving the path out). A file that
// genuinely starts with "--" can still be reached via "./--odd-name".
inline std::string ParsePathFlag(std::string_view flag,
                                 std::string_view text) {
  if (text.empty()) {
    throw Error(std::string(flag) + " requires a non-empty path");
  }
  if (text.size() >= 2 && text.substr(0, 2) == "--") {
    throw Error(std::string(flag) + "='" + std::string(text) +
                "' looks like a flag, not a path (prefix it with ./ if the "
                "file name really starts with --)");
  }
  return std::string(text);
}

// Non-negative finite decimal number (digits with an optional fractional
// part; no sign, no exponent, no trailing garbage). Covers every duration
// flag; scientific notation on a CLI deadline is a typo, not a feature.
inline double ParseNonNegativeDoubleFlag(std::string_view flag,
                                         std::string_view text) {
  const auto fail = [&]() {
    throw Error(std::string(flag) + "='" + std::string(text) +
                "' is not a non-negative number");
  };
  if (text.empty()) fail();
  std::size_t dot = std::string_view::npos;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '.') {
      if (dot != std::string_view::npos) fail();  // second '.'
      dot = i;
      continue;
    }
    if (text[i] < '0' || text[i] > '9') fail();
  }
  if (text.size() == 1 && dot == 0) fail();  // "." alone
  return std::stod(std::string(text));
}

}  // namespace pfd
