// Deterministic pseudo-random number generation.
//
// All stochastic parts of the library (Monte Carlo power estimation, random
// circuit generation in tests) draw from this xoshiro256** generator so that
// every experiment is reproducible from a seed. The LFSR-based TPGR used for
// *test pattern* generation lives in src/tpg — the paper distinguishes the
// tester's TPGR from generic randomness, and so do we.
#pragma once

#include <cstdint>

namespace pfd {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // splitmix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t Next() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound).
  std::uint64_t Below(std::uint64_t bound) { return Next() % bound; }

  // Uniform value with the given number of low bits.
  std::uint32_t Bits(int bits) {
    return static_cast<std::uint32_t>(Next() & ((1ULL << bits) - 1));
  }

  bool Chance(double p) {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53 < p;
  }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace pfd
