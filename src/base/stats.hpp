// Streaming statistics used by the Monte Carlo power engine.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

#include "base/error.hpp"

namespace pfd {

// Welford online mean/variance accumulator.
class RunningStat {
 public:
  void Add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }

  // Folds another accumulator into this one (Chan et al. parallel
  // combination of Welford states): the result is exactly the state this
  // accumulator would hold had it seen both sample streams. Lets sharded
  // Monte Carlo workers and per-thread obs aggregates each keep a private
  // RunningStat and combine at the end.
  void Merge(const RunningStat& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const double delta = other.mean_ - mean_;
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double n = na + nb;
    m2_ += other.m2_ + delta * delta * na * nb / n;
    mean_ += delta * nb / n;
    n_ += other.n_;
  }

  std::uint64_t count() const { return n_; }
  double mean() const { return mean_; }

  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }

  // Approximate 95% confidence half-width of the mean (normal approximation;
  // the Monte Carlo engine only uses this as a convergence heuristic).
  double ConfidenceHalfWidth95() const {
    if (n_ < 2) return std::numeric_limits<double>::infinity();
    return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
  }

  // Relative half-width |ci/mean|; infinity when the mean is ~0.
  double RelativeHalfWidth95() const {
    const double m = std::abs(mean_);
    if (m < 1e-300) return std::numeric_limits<double>::infinity();
    return ConfidenceHalfWidth95() / m;
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

// Percentage change of `value` relative to `baseline` (paper reports all
// power deltas this way).
inline double PercentChange(double baseline, double value) {
  PFD_CHECK_MSG(baseline != 0.0, "percent change of zero baseline");
  return (value - baseline) / baseline * 100.0;
}

}  // namespace pfd
