// Streaming statistics used by the Monte Carlo power engine.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

#include "base/error.hpp"

namespace pfd {

// Welford online mean/variance accumulator.
class RunningStat {
 public:
  void Add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }

  std::uint64_t count() const { return n_; }
  double mean() const { return mean_; }

  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }

  // Approximate 95% confidence half-width of the mean (normal approximation;
  // the Monte Carlo engine only uses this as a convergence heuristic).
  double ConfidenceHalfWidth95() const {
    if (n_ < 2) return std::numeric_limits<double>::infinity();
    return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
  }

  // Relative half-width |ci/mean|; infinity when the mean is ~0.
  double RelativeHalfWidth95() const {
    const double m = std::abs(mean_);
    if (m < 1e-300) return std::numeric_limits<double>::infinity();
    return ConfidenceHalfWidth95() / m;
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

// Percentage change of `value` relative to `baseline` (paper reports all
// power deltas this way).
inline double PercentChange(double baseline, double value) {
  PFD_CHECK_MSG(baseline != 0.0, "percent change of zero baseline");
  return (value - baseline) / baseline * 100.0;
}

}  // namespace pfd
