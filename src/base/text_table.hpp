// Plain-text table rendering for benchmark harnesses and reports.
//
// Every bench binary regenerates one of the paper's tables/figures as rows of
// text; this helper keeps their output format uniform and also supports CSV
// for downstream plotting.
#pragma once

#include <string>
#include <vector>

namespace pfd {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void AddRow(std::vector<std::string> row);
  // Inserts a horizontal rule before the next added row.
  void AddRule();

  // Renders with aligned columns and a header rule.
  std::string ToString() const;
  std::string ToCsv() const;

  static std::string FormatDouble(double v, int decimals);
  // "+x.xx%" / "-x.xx%" as the paper prints percentage changes.
  static std::string FormatPercent(double v, int decimals = 2);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty row == rule
};

}  // namespace pfd
