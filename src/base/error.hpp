// Error handling primitives for the pfd library.
//
// The library follows the C++ Core Guidelines error-handling model (E.2,
// E.3): programming-contract violations and unrecoverable construction
// failures throw pfd::Error; expected, recoverable conditions are expressed
// through return values (std::optional / status structs) at the call sites
// that need them.
#pragma once

#include <stdexcept>
#include <string>

namespace pfd {

// Exception thrown for all pfd library failures (bad input descriptions,
// violated invariants, malformed netlists, ...).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void ThrowCheckFailure(const char* expr, const char* file,
                                    int line, const std::string& message);
}  // namespace detail

// PFD_CHECK(cond) / PFD_CHECK_MSG(cond, msg): validate an invariant or a
// precondition; throws pfd::Error (never aborts) so library users can treat
// misuse as a recoverable error at a higher level.
#define PFD_CHECK(cond)                                                   \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::pfd::detail::ThrowCheckFailure(#cond, __FILE__, __LINE__, "");    \
    }                                                                     \
  } while (false)

#define PFD_CHECK_MSG(cond, msg)                                          \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::pfd::detail::ThrowCheckFailure(#cond, __FILE__, __LINE__, (msg)); \
    }                                                                     \
  } while (false)

}  // namespace pfd
