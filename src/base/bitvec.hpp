// Fixed-width unsigned bit vector used as the concrete value domain of the
// RTL simulator. Arithmetic wraps modulo 2^width, matching the behaviour of
// the synthesized datapath hardware (ripple-carry adders / truncated array
// multipliers).
#pragma once

#include <compare>
#include <cstdint>
#include <string>

#include "base/error.hpp"

namespace pfd {

class BitVec {
 public:
  static constexpr int kMaxWidth = 16;

  BitVec() = default;
  BitVec(int width, std::uint32_t value) : width_(width) {
    PFD_CHECK_MSG(width >= 1 && width <= kMaxWidth, "BitVec width out of range");
    value_ = value & Mask(width);
  }

  int width() const { return width_; }
  std::uint32_t value() const { return value_; }
  bool bit(int i) const { return ((value_ >> i) & 1U) != 0; }

  static std::uint32_t Mask(int width) { return (1U << width) - 1U; }

  friend bool operator==(const BitVec&, const BitVec&) = default;

  std::string ToString() const;  // e.g. "4'b0101"

 private:
  std::uint8_t width_ = 1;
  std::uint32_t value_ = 0;
};

// All binary arithmetic requires equal widths (the datapath is uniform-width
// by construction); results wrap to the operand width.
BitVec Add(const BitVec& a, const BitVec& b);
BitVec Sub(const BitVec& a, const BitVec& b);
BitVec Mul(const BitVec& a, const BitVec& b);
BitVec And(const BitVec& a, const BitVec& b);
BitVec Or(const BitVec& a, const BitVec& b);
BitVec Xor(const BitVec& a, const BitVec& b);
BitVec Not(const BitVec& a);
// Unsigned comparison; returns a 1-bit vector.
BitVec LessThan(const BitVec& a, const BitVec& b);

}  // namespace pfd
