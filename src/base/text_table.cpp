#include "base/text_table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "base/error.hpp"

namespace pfd {

void TextTable::AddRow(std::vector<std::string> row) {
  PFD_CHECK_MSG(row.size() == header_.size(), "table row arity mismatch");
  rows_.push_back(std::move(row));
}

void TextTable::AddRule() { rows_.emplace_back(); }

std::string TextTable::ToString() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_rule = [&](std::ostringstream& os) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      os << '+' << std::string(widths[c] + 2, '-');
    }
    os << "+\n";
  };
  auto render_row = [&](std::ostringstream& os,
                        const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << "| " << cell << std::string(widths[c] - cell.size() + 1, ' ');
    }
    os << "|\n";
  };

  std::ostringstream os;
  render_rule(os);
  render_row(os, header_);
  render_rule(os);
  for (const auto& row : rows_) {
    if (row.empty()) {
      render_rule(os);
    } else {
      render_row(os, row);
    }
  }
  render_rule(os);
  return os.str();
}

std::string TextTable::ToCsv() const {
  auto escape = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ',';
      os << escape(row[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) {
    if (!row.empty()) emit(row);
  }
  return os.str();
}

std::string TextTable::FormatDouble(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

std::string TextTable::FormatPercent(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%+.*f%%", decimals, v);
  return buf;
}

}  // namespace pfd
