#include "base/error.hpp"

#include <sstream>

namespace pfd::detail {

void ThrowCheckFailure(const char* expr, const char* file, int line,
                       const std::string& message) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ":" << line;
  if (!message.empty()) {
    os << " — " << message;
  }
  throw Error(os.str());
}

}  // namespace pfd::detail
