#include "netlist/opt.hpp"

namespace pfd::netlist {

SweepResult SweepDeadLogic(const Netlist& nl) {
  const std::size_t n = nl.size();
  std::vector<std::uint8_t> live(n, 0);
  std::vector<GateId> work;

  auto mark = [&](GateId g) {
    if (!live[g]) {
      live[g] = 1;
      work.push_back(g);
    }
  };
  for (const OutputPort& po : nl.outputs()) mark(po.gate);
  for (GateId g = 0; g < n; ++g) {
    if (nl.gate(g).kind == GateKind::kInput) mark(g);
  }
  while (!work.empty()) {
    const GateId g = work.back();
    work.pop_back();
    for (GateId f : nl.Fanins(g)) mark(f);
  }

  SweepResult out;
  out.remap.assign(n, kNoGate);
  // First pass: create live gates in the original order (fanins of a
  // combinational gate always precede it; DFF data pins are patched after).
  for (GateId g = 0; g < n; ++g) {
    if (!live[g]) {
      ++out.removed;
      continue;
    }
    const Gate& gate = nl.gate(g);
    if (gate.kind == GateKind::kDff) {
      out.remap[g] = out.netlist.AddDff(gate.module, nl.Name(g));
    } else {
      std::vector<GateId> fanins;
      for (GateId f : nl.Fanins(g)) {
        PFD_CHECK_MSG(out.remap[f] != kNoGate, "live gate reads dead gate");
        fanins.push_back(out.remap[f]);
      }
      out.remap[g] =
          out.netlist.AddGate(gate.kind, gate.module, fanins, nl.Name(g));
    }
  }
  for (GateId g = 0; g < n; ++g) {
    if (live[g] && nl.gate(g).kind == GateKind::kDff) {
      const GateId d = nl.Fanins(g)[0];
      PFD_CHECK_MSG(out.remap[d] != kNoGate, "live DFF reads dead gate");
      out.netlist.ConnectDff(out.remap[g], out.remap[d]);
    }
  }
  for (const OutputPort& po : nl.outputs()) {
    out.netlist.AddOutput(out.remap[po.gate], po.name);
  }
  out.netlist.Validate();
  return out;
}

}  // namespace pfd::netlist
