// Gate-level netlist representation.
//
// The netlist is a single-driver directed graph: every gate produces exactly
// one output net, identified by the gate's id. Sequential elements are
// positive-edge DFFs clocked by one implicit global clock (the paper's
// designs are single-clock synchronous systems). Primary inputs are gates of
// kind kInput whose values the simulator supplies each cycle; primary
// outputs are an explicit observation list.
//
// Each gate carries a ModuleTag so that downstream passes can (a) enumerate
// stuck-at faults *within the controller* only, exactly as the paper does,
// and (b) account power for the *datapath* only (the paper reports datapath
// power in all experiments).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "base/error.hpp"

namespace pfd::netlist {

using GateId = std::uint32_t;
inline constexpr GateId kNoGate = 0xFFFFFFFFu;

enum class GateKind : std::uint8_t {
  kInput,   // primary input; no fanin
  kConst0,  // constant 0
  kConst1,  // constant 1
  kBuf,     // 1 fanin
  kNot,     // 1 fanin
  kAnd,     // >= 2 fanins
  kOr,      // >= 2 fanins
  kNand,    // >= 2 fanins
  kNor,     // >= 2 fanins
  kXor,     // exactly 2 fanins
  kXnor,    // exactly 2 fanins
  kMux2,    // 3 fanins: {sel, d0 (sel==0), d1 (sel==1)}
  kDff,     // 1 fanin: {d}; output is the register state, initially X
};

const char* GateKindName(GateKind kind);
bool IsCombinational(GateKind kind);

// Which part of the system a gate belongs to.
enum class ModuleTag : std::uint8_t {
  kDatapath = 0,
  kController = 1,
  kInterface = 2,  // glue that is neither (e.g. buffered control lines)
};

const char* ModuleTagName(ModuleTag tag);

struct Gate {
  GateKind kind;
  ModuleTag module;
  std::uint32_t fanin_begin = 0;
  std::uint32_t fanin_count = 0;
};

// A named observation point for test-response comparison.
struct OutputPort {
  GateId gate;
  std::string name;
};

struct NetlistStats {
  std::size_t gates = 0;
  std::size_t inputs = 0;
  std::size_t dffs = 0;
  std::size_t combinational = 0;
  std::size_t controller_gates = 0;
  std::size_t datapath_gates = 0;
  std::string ToString() const;
};

class Netlist {
 public:
  // --- construction ------------------------------------------------------
  GateId AddInput(std::string name, ModuleTag module = ModuleTag::kDatapath);
  GateId AddGate(GateKind kind, ModuleTag module,
                 std::span<const GateId> fanins, std::string name = "");
  // DFFs may participate in feedback loops, so their D input can be
  // connected after creation.
  GateId AddDff(ModuleTag module, std::string name = "");
  void ConnectDff(GateId dff, GateId d);

  void AddOutput(GateId gate, std::string name);
  // Removes all registered output ports (used by DFT passes that re-route
  // the observation points).
  void ClearOutputs() { outputs_.clear(); }

  // --- accessors ----------------------------------------------------------
  std::size_t size() const { return gates_.size(); }
  const Gate& gate(GateId id) const { return gates_[id]; }
  std::span<const GateId> Fanins(GateId id) const {
    const Gate& g = gates_[id];
    return {fanin_pool_.data() + g.fanin_begin, g.fanin_count};
  }
  const std::string& Name(GateId id) const { return names_[id]; }
  const std::vector<OutputPort>& outputs() const { return outputs_; }

  std::vector<GateId> InputIds() const;
  std::vector<GateId> DffIds() const;
  // Gates with the given module tag, in id order.
  std::vector<GateId> GatesInModule(ModuleTag tag) const;

  // Number of gates reading this net (input-pin count over all fanouts).
  std::vector<std::uint32_t> FanoutCounts() const;

  NetlistStats Stats() const;

  // --- structure ----------------------------------------------------------
  // Throws pfd::Error if any gate has wrong arity, a dangling fanin, or the
  // combinational part contains a cycle.
  void Validate() const;

  // Topological order of the combinational gates (kBuf..kMux2). Sources
  // (inputs, constants, DFF outputs) are not included; DFF D-pins are sinks.
  // Cached; invalidated by structural edits.
  const std::vector<GateId>& CombinationalOrder() const;

  // Graphviz dump (module-coloured) for documentation and debugging.
  std::string ToDot() const;

  // FNV-1a digest of the structure that determines simulation behaviour:
  // gate kinds, module tags, and the fanin graph. Names and output ports do
  // not contribute (they never change simulated values), so two netlists
  // with the same hash produce identical traces under identical stimulus.
  // Used as the netlist component of golden-trace cache keys. O(gates),
  // not cached: callers that key caches should hash once per run.
  std::uint64_t StructuralHash() const;

 private:
  void CheckId(GateId id) const {
    PFD_CHECK_MSG(id < gates_.size(), "gate id out of range");
  }

  std::vector<Gate> gates_;
  std::vector<GateId> fanin_pool_;
  std::vector<std::string> names_;
  std::vector<OutputPort> outputs_;
  mutable std::vector<GateId> topo_cache_;
  mutable bool topo_valid_ = false;
};

// Expected fanin arity for a kind; -1 means "2 or more".
int ExpectedArity(GateKind kind);

}  // namespace pfd::netlist
