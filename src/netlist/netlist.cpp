#include "netlist/netlist.hpp"

#include <algorithm>
#include <sstream>

namespace pfd::netlist {

const char* GateKindName(GateKind kind) {
  switch (kind) {
    case GateKind::kInput: return "INPUT";
    case GateKind::kConst0: return "CONST0";
    case GateKind::kConst1: return "CONST1";
    case GateKind::kBuf: return "BUF";
    case GateKind::kNot: return "NOT";
    case GateKind::kAnd: return "AND";
    case GateKind::kOr: return "OR";
    case GateKind::kNand: return "NAND";
    case GateKind::kNor: return "NOR";
    case GateKind::kXor: return "XOR";
    case GateKind::kXnor: return "XNOR";
    case GateKind::kMux2: return "MUX2";
    case GateKind::kDff: return "DFF";
  }
  return "?";
}

bool IsCombinational(GateKind kind) {
  switch (kind) {
    case GateKind::kInput:
    case GateKind::kConst0:
    case GateKind::kConst1:
    case GateKind::kDff:
      return false;
    default:
      return true;
  }
}

const char* ModuleTagName(ModuleTag tag) {
  switch (tag) {
    case ModuleTag::kDatapath: return "datapath";
    case ModuleTag::kController: return "controller";
    case ModuleTag::kInterface: return "interface";
  }
  return "?";
}

int ExpectedArity(GateKind kind) {
  switch (kind) {
    case GateKind::kInput:
    case GateKind::kConst0:
    case GateKind::kConst1:
      return 0;
    case GateKind::kBuf:
    case GateKind::kNot:
    case GateKind::kDff:
      return 1;
    case GateKind::kXor:
    case GateKind::kXnor:
      return 2;
    case GateKind::kMux2:
      return 3;
    case GateKind::kAnd:
    case GateKind::kOr:
    case GateKind::kNand:
    case GateKind::kNor:
      return -1;
  }
  return -1;
}

std::string NetlistStats::ToString() const {
  std::ostringstream os;
  os << gates << " gates (" << inputs << " inputs, " << dffs << " DFFs, "
     << combinational << " combinational); controller " << controller_gates
     << ", datapath " << datapath_gates;
  return os.str();
}

GateId Netlist::AddInput(std::string name, ModuleTag module) {
  return AddGate(GateKind::kInput, module, {}, std::move(name));
}

GateId Netlist::AddGate(GateKind kind, ModuleTag module,
                        std::span<const GateId> fanins, std::string name) {
  const int arity = ExpectedArity(kind);
  if (arity >= 0) {
    PFD_CHECK_MSG(fanins.size() == static_cast<std::size_t>(arity),
                  std::string("bad arity for ") + GateKindName(kind));
  } else {
    PFD_CHECK_MSG(fanins.size() >= 2,
                  std::string("need >= 2 fanins for ") + GateKindName(kind));
  }
  for (GateId f : fanins) {
    PFD_CHECK_MSG(f < gates_.size(), "fanin refers to a gate not yet created");
  }
  Gate g{kind, module, static_cast<std::uint32_t>(fanin_pool_.size()),
         static_cast<std::uint32_t>(fanins.size())};
  fanin_pool_.insert(fanin_pool_.end(), fanins.begin(), fanins.end());
  gates_.push_back(g);
  names_.push_back(std::move(name));
  topo_valid_ = false;
  return static_cast<GateId>(gates_.size() - 1);
}

GateId Netlist::AddDff(ModuleTag module, std::string name) {
  Gate g{GateKind::kDff, module, static_cast<std::uint32_t>(fanin_pool_.size()),
         1};
  fanin_pool_.push_back(kNoGate);  // patched by ConnectDff
  gates_.push_back(g);
  names_.push_back(std::move(name));
  topo_valid_ = false;
  return static_cast<GateId>(gates_.size() - 1);
}

void Netlist::ConnectDff(GateId dff, GateId d) {
  CheckId(dff);
  CheckId(d);
  PFD_CHECK_MSG(gates_[dff].kind == GateKind::kDff, "not a DFF");
  fanin_pool_[gates_[dff].fanin_begin] = d;
  topo_valid_ = false;
}

void Netlist::AddOutput(GateId gate, std::string name) {
  CheckId(gate);
  outputs_.push_back({gate, std::move(name)});
}

std::vector<GateId> Netlist::InputIds() const {
  std::vector<GateId> ids;
  for (GateId i = 0; i < gates_.size(); ++i) {
    if (gates_[i].kind == GateKind::kInput) ids.push_back(i);
  }
  return ids;
}

std::vector<GateId> Netlist::DffIds() const {
  std::vector<GateId> ids;
  for (GateId i = 0; i < gates_.size(); ++i) {
    if (gates_[i].kind == GateKind::kDff) ids.push_back(i);
  }
  return ids;
}

std::vector<GateId> Netlist::GatesInModule(ModuleTag tag) const {
  std::vector<GateId> ids;
  for (GateId i = 0; i < gates_.size(); ++i) {
    if (gates_[i].module == tag) ids.push_back(i);
  }
  return ids;
}

std::vector<std::uint32_t> Netlist::FanoutCounts() const {
  std::vector<std::uint32_t> counts(gates_.size(), 0);
  for (GateId f : fanin_pool_) {
    if (f != kNoGate) ++counts[f];
  }
  return counts;
}

NetlistStats Netlist::Stats() const {
  NetlistStats s;
  s.gates = gates_.size();
  for (const Gate& g : gates_) {
    if (g.kind == GateKind::kInput) ++s.inputs;
    if (g.kind == GateKind::kDff) ++s.dffs;
    if (IsCombinational(g.kind)) ++s.combinational;
    if (g.module == ModuleTag::kController) ++s.controller_gates;
    if (g.module == ModuleTag::kDatapath) ++s.datapath_gates;
  }
  return s;
}

void Netlist::Validate() const {
  for (GateId i = 0; i < gates_.size(); ++i) {
    for (GateId f : Fanins(i)) {
      PFD_CHECK_MSG(f != kNoGate, "unconnected DFF data pin: " + names_[i]);
      PFD_CHECK_MSG(f < gates_.size(), "dangling fanin");
    }
  }
  for (const OutputPort& po : outputs_) {
    PFD_CHECK_MSG(po.gate < gates_.size(), "dangling output port");
  }
  CombinationalOrder();  // throws on combinational cycles
}

const std::vector<GateId>& Netlist::CombinationalOrder() const {
  if (topo_valid_) return topo_cache_;
  // Kahn's algorithm restricted to combinational gates. A combinational
  // gate's in-degree counts only its combinational fanins; inputs, constants
  // and DFF outputs are already available when a cycle's evaluation starts.
  std::vector<std::uint32_t> indeg(gates_.size(), 0);
  for (GateId i = 0; i < gates_.size(); ++i) {
    if (!IsCombinational(gates_[i].kind)) continue;
    for (GateId f : Fanins(i)) {
      if (f != kNoGate && IsCombinational(gates_[f].kind)) ++indeg[i];
    }
  }
  std::vector<GateId> order;
  order.reserve(gates_.size());
  std::vector<GateId> ready;
  for (GateId i = 0; i < gates_.size(); ++i) {
    if (IsCombinational(gates_[i].kind) && indeg[i] == 0) ready.push_back(i);
  }
  // Per-gate fanout adjacency (combinational edges only), built once here.
  std::vector<std::vector<GateId>> fanout(gates_.size());
  for (GateId i = 0; i < gates_.size(); ++i) {
    if (!IsCombinational(gates_[i].kind)) continue;
    for (GateId f : Fanins(i)) {
      if (f != kNoGate && IsCombinational(gates_[f].kind)) {
        fanout[f].push_back(i);
      }
    }
  }
  while (!ready.empty()) {
    const GateId g = ready.back();
    ready.pop_back();
    order.push_back(g);
    for (GateId succ : fanout[g]) {
      if (--indeg[succ] == 0) ready.push_back(succ);
    }
  }
  std::size_t comb_total = 0;
  for (const Gate& g : gates_) {
    if (IsCombinational(g.kind)) ++comb_total;
  }
  PFD_CHECK_MSG(order.size() == comb_total, "combinational cycle in netlist");
  topo_cache_ = std::move(order);
  topo_valid_ = true;
  return topo_cache_;
}

std::uint64_t Netlist::StructuralHash() const {
  // FNV-1a, 64-bit. Byte-feeding a fixed-width little-endian encoding keeps
  // the digest independent of host layout.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (8 * byte)) & 0xFF;
      h *= 0x100000001b3ULL;
    }
  };
  mix(gates_.size());
  for (const Gate& g : gates_) {
    mix(static_cast<std::uint64_t>(g.kind) |
        (static_cast<std::uint64_t>(g.module) << 8) |
        (static_cast<std::uint64_t>(g.fanin_count) << 16));
  }
  mix(fanin_pool_.size());
  for (GateId f : fanin_pool_) mix(f);
  return h;
}

std::string Netlist::ToDot() const {
  std::ostringstream os;
  os << "digraph netlist {\n  rankdir=LR;\n";
  for (GateId i = 0; i < gates_.size(); ++i) {
    const Gate& g = gates_[i];
    const char* color = g.module == ModuleTag::kController ? "lightblue"
                        : g.module == ModuleTag::kDatapath ? "lightyellow"
                                                           : "lightgray";
    const char* shape = g.kind == GateKind::kDff      ? "box"
                        : g.kind == GateKind::kInput  ? "invtriangle"
                                                      : "ellipse";
    os << "  g" << i << " [label=\"" << GateKindName(g.kind);
    if (!names_[i].empty()) os << "\\n" << names_[i];
    os << "\", shape=" << shape << ", style=filled, fillcolor=" << color
       << "];\n";
  }
  for (GateId i = 0; i < gates_.size(); ++i) {
    for (GateId f : Fanins(i)) {
      if (f != kNoGate) os << "  g" << f << " -> g" << i << ";\n";
    }
  }
  for (const OutputPort& po : outputs_) {
    os << "  po_" << po.name << " [label=\"" << po.name
       << "\", shape=triangle];\n  g" << po.gate << " -> po_" << po.name
       << ";\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace pfd::netlist
