// Netlist clean-up transformations.
//
// SweepDeadLogic removes gates that cannot influence any observation point —
// the structural redundancy where CFR faults live ("CFR faults ... require
// design-for-testability insertion within the controller itself" — or, as
// here, a synthesis clean-up pass that removes their home). tests/ verify
// that sweeping preserves simulated behaviour exactly and that the CFR
// fault population of a deliberately redundant controller disappears.
#pragma once

#include <vector>

#include "netlist/netlist.hpp"

namespace pfd::netlist {

struct SweepResult {
  Netlist netlist;
  // old gate id -> new gate id, or kNoGate if the gate was removed.
  std::vector<GateId> remap;
  std::size_t removed = 0;
};

// Removes every gate outside the cone of influence of the output ports.
// Primary inputs are always kept (their identity and order is part of the
// design's interface); DFFs are kept only if some live gate reads them.
SweepResult SweepDeadLogic(const Netlist& nl);

}  // namespace pfd::netlist
