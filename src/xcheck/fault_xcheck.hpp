// Differential fuzzing of the fault-simulation engines against each other.
//
// The three fault::RunFaultSim engines promise bit-identical results; this
// harness earns that promise the same way xcheck.hpp earns the kernel's.
// A FaultCase is one complete campaign in plain, shrinkable data form: a
// generated circuit (the Scenario node list from gen.hpp), a TestPlan
// carved out of it (reset protocol, operand wiring, strobes, observation
// nets), a sampled stuck-at fault list and the TPGR stimulus. RunFaultCase
// runs the campaign through kSerial (the reference), kParallel and
// kDifferential and miscompare-checks per fault: final status, first
// hard-detecting pattern, and the pattern count.
//
// On a miscompare, ShrinkFaultCase greedily minimizes the campaign —
// dropping faults, patterns, strobes, observation nets, operands and
// gates — while it still fails, and FaultCaseToCpp renders the survivor as
// a ready-to-paste regression test.
//
// RunFaultMutationCheck is the proof of life: it arms each
// fault::kFaultSimMutationFailpoints entry (a planted differential-engine
// bug behind a guard "flag" failpoint) and requires the sweep to catch
// every one. An engine cross-checker that passes with a planted cone bug
// is measuring nothing.
//
// Obs counters: fault_xcheck.runs, .miscompares, .shrink_steps.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "fault/fault_sim.hpp"
#include "xcheck/gen.hpp"
#include "xcheck/xcheck.hpp"

namespace pfd::xcheck {

// One engine-equivalence campaign. Node indices double as GateIds (the
// BuildNetlist contract), so the plan fields and fault list reference nodes
// directly. Invariants (the generator produces them, the shrinker preserves
// them): operand bits and reset_node are kInput nodes; strobes lie in
// [0, cycles_per_pattern); observe is non-empty; fault pins are in range
// for the target's arity; num_patterns >= 1.
struct FaultCase {
  static constexpr std::uint32_t kNoNode = ~0u;

  std::vector<NodeSpec> nodes;
  std::uint32_t reset_node = kNoNode;  // kNoNode = no reset protocol
  std::vector<std::vector<std::uint32_t>> operand_bits;
  int cycles_per_pattern = 1;
  std::vector<int> strobe_cycles;
  std::vector<std::uint32_t> observe;
  std::vector<fault::StuckFault> faults;
  std::uint32_t tpgr_seed = 1;
  int num_patterns = 1;
};

// Draws one well-formed campaign. Deterministic in (rng state, cfg); the
// circuit shape is governed by the same GenConfig knobs as the kernel
// fuzzer (cycle knobs are reinterpreted as pattern knobs).
FaultCase GenerateFaultCase(Rng& rng, const GenConfig& cfg);

// Materializes the campaign's TestPlan against its built netlist.
fault::TestPlan BuildTestPlan(const FaultCase& fc);

// Runs the campaign through every engine and returns the first divergence
// from the serial reference (ok == true when all three agree everywhere).
CaseResult RunFaultCase(const FaultCase& fc);

// Greedy campaign minimization: the smallest found FaultCase that still
// fails RunFaultCase, bumping *steps once per accepted reduction.
FaultCase ShrinkFaultCase(const FaultCase& failing, std::uint64_t* steps);

// Renders the campaign as a ready-to-paste C++ test-case body.
std::string FaultCaseToCpp(const FaultCase& fc);

struct FaultXcheckResult {
  std::uint64_t cases_run = 0;
  std::uint64_t miscompares = 0;  // sweep stops at the first one
  // Valid when miscompares > 0:
  std::uint64_t failing_case_seed = 0;
  std::uint32_t failing_case_index = 0;
  std::string failure_detail;
  std::uint64_t shrink_steps = 0;
  FaultCase repro;         // shrunk when cfg.shrink, else the raw case
  std::string repro_cpp;   // FaultCaseToCpp(repro)
};

// Engine-equivalence sweep over cfg.iters generated campaigns; stops at the
// first miscompare (shrinking it when cfg.shrink). Case seeds come from the
// same CaseSeed(cfg.seed, index) stream as the kernel fuzzer.
FaultXcheckResult RunFaultXcheck(const XcheckConfig& cfg);

// Arms each fault::kFaultSimMutationFailpoints entry in turn and re-runs
// the sweep, requiring a miscompare for every planted differential-engine
// bug. Restores the failpoint state armed from $PFD_FAILPOINTS.
MutationResult RunFaultMutationCheck(const XcheckConfig& cfg);

}  // namespace pfd::xcheck
