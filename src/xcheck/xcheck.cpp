#include "xcheck/xcheck.hpp"

#include <optional>
#include <utility>

#include "base/error.hpp"
#include "guard/guard.hpp"
#include "logicsim/simulator.hpp"
#include "obs/obs.hpp"
#include "xcheck/ref_sim.hpp"

namespace pfd::xcheck {

using netlist::GateId;
using netlist::GateKind;

namespace {

std::string Describe(const char* what, std::uint64_t cycle, GateId g,
                     const std::string& rest) {
  return std::string(what) + " miscompare at cycle " + std::to_string(cycle) +
         ", gate " + std::to_string(g) + ": " + rest;
}

// One post-Step comparison of every observable the kernel promises to keep
// bit-identical to the reference. Returns the first divergence found.
CaseResult CompareStates(const logicsim::Simulator& sim,
                         const RefSimulator& ref, const CycleSpec& cy,
                         std::uint64_t cycle) {
  const std::size_t n = sim.nl().size();
  if (sim.cycles() != ref.cycles()) {
    return {false, Describe("cycle-counter", cycle, 0,
                            "compiled=" + std::to_string(sim.cycles()) +
                                " ref=" + std::to_string(ref.cycles()))};
  }
  if (sim.last_step_two_valued() != ref.last_step_two_valued()) {
    return {false,
            Describe("fast-path predicate", cycle, 0,
                     std::string("compiled=") +
                         (sim.last_step_two_valued() ? "true" : "false") +
                         " ref=" +
                         (ref.last_step_two_valued() ? "true" : "false"))};
  }
  for (GateId g = 0; g < n; ++g) {
    const Word3 got = sim.Value(g);
    const Word3 want = Splat(ref.Value(g));
    if (got != want) {
      return {false,
              Describe("value", cycle, g,
                       std::string("compiled={val=") +
                           std::to_string(got.val) +
                           ",known=" + std::to_string(got.known) + "} ref=" +
                           TritChar(ref.Value(g)))};
    }
  }
  for (GateId g = 0; g < n; ++g) {
    if (sim.ToggleCount(g) != 64 * ref.ToggleCount(g)) {
      return {false, Describe("toggle-count", cycle, g,
                              "compiled=" + std::to_string(sim.ToggleCount(g)) +
                                  " ref=64*" +
                                  std::to_string(ref.ToggleCount(g)))};
    }
    if (sim.DutyCount(g) != 64 * ref.DutyCount(g)) {
      return {false, Describe("duty-count", cycle, g,
                              "compiled=" + std::to_string(sim.DutyCount(g)) +
                                  " ref=64*" +
                                  std::to_string(ref.DutyCount(g)))};
    }
  }
  // The watermark is only defined after zero-delay settles; the unit-delay
  // path leaves it stale by contract.
  if (!cy.unit_delay) {
    const logicsim::CompiledNetlist& prog = sim.program();
    const auto& levels = prog.levels();
    const auto& out = prog.out();
    const auto& watermark = sim.level_x_watermark();
    for (std::size_t li = 0; li < levels.size(); ++li) {
      bool any_x = false;
      for (std::uint32_t i = levels[li].begin; i < levels[li].end; ++i) {
        any_x |= ref.Value(out[i]) == Trit::kX;
      }
      const std::uint64_t want = any_x ? ~0ULL : 0;
      if (watermark[li] != want) {
        return {false,
                Describe("X-watermark", cycle, 0,
                         "level " + std::to_string(li) + " compiled=" +
                             std::to_string(watermark[li]) +
                             " expected=" + std::to_string(want))};
      }
    }
  }
  return {};
}

}  // namespace

CaseResult RunScenario(const Scenario& s) {
  netlist::Netlist nl = BuildNetlist(s);
  nl.Validate();

  logicsim::Simulator sim(nl);
  RefSimulator ref(nl);

  // Rebuilding the circuit must land on the very hash the compiled program
  // cached: the golden-trace cache keys on it, so any instability here
  // aliases cache entries across distinct circuits.
  {
    const netlist::Netlist rebuilt = BuildNetlist(s);
    const std::uint64_t h1 = nl.StructuralHash();
    const std::uint64_t h2 = rebuilt.StructuralHash();
    if (h1 != h2 || h1 != sim.program().structural_hash()) {
      return {false, "structural-hash instability: build=" +
                         std::to_string(h1) +
                         " rebuild=" + std::to_string(h2) + " compiled=" +
                         std::to_string(sim.program().structural_hash())};
    }
  }

  // A never-tripping guard probe keeps the kernel's cooperative
  // checkpoints on the differential path.
  guard::Checker probe{guard::Limits{}};
  sim.SetGuardProbe(&probe);

  sim.EnableToggleCounting(true);
  ref.EnableToggleCounting(true);

  for (std::uint64_t c = 0; c < s.cycles.size(); ++c) {
    const CycleSpec& cy = s.cycles[c];
    if (cy.reset) {
      sim.Reset();
      ref.Reset();
    }
    sim.EnableUnitDelay(cy.unit_delay);
    ref.EnableUnitDelay(cy.unit_delay);
    for (const ForceOp& f : cy.forces) {
      switch (f.kind) {
        case ForceOp::kClear:
          sim.ClearForces();
          ref.ClearForces();
          break;
        case ForceOp::kOutput:
          sim.ForceOutput(f.node, f.value);
          ref.ForceOutput(f.node, f.value);
          break;
        case ForceOp::kPin:
          sim.ForcePin(f.node, f.pin, f.value);
          ref.ForcePin(f.node, f.pin, f.value);
          break;
      }
    }
    for (const auto& [in, v] : cy.inputs) {
      sim.SetInputAllLanes(in, v);
      ref.SetInput(in, v);
    }
    sim.Step();
    ref.Step();
    const CaseResult r = CompareStates(sim, ref, cy, c);
    if (!r.ok) return r;
  }
  return {};
}

std::uint64_t CaseSeed(std::uint64_t seed, std::uint32_t index) {
  // splitmix64 of (seed, index) so case streams are pairwise unrelated.
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

XcheckResult RunXcheck(const XcheckConfig& cfg) {
  XcheckResult out;
  obs::Registry& reg = obs::Registry::Global();
  for (std::uint32_t i = 0; i < cfg.iters; ++i) {
    const std::uint64_t case_seed = CaseSeed(cfg.seed, i);
    Rng rng(case_seed);
    const Scenario s = GenerateScenario(rng, cfg.gen);
    if (obs::Enabled()) reg.GetCounter("xcheck.runs").Add(1);
    const CaseResult r = RunScenario(s);
    ++out.cases_run;
    if (r.ok) continue;
    if (obs::Enabled()) reg.GetCounter("xcheck.miscompares").Add(1);
    out.miscompares = 1;
    out.failing_case_seed = case_seed;
    out.failing_case_index = i;
    out.failure_detail = r.detail;
    out.repro = cfg.shrink ? Shrink(s, &out.shrink_steps) : s;
    out.repro_cpp = ScenarioToCpp(out.repro);
    break;
  }
  return out;
}

namespace {

bool StillFails(const Scenario& s) {
  try {
    return !RunScenario(s).ok;
  } catch (const Error&) {
    return false;  // a reduction that broke well-formedness is rejected
  }
}

// Deletes node k, remapping every reference to an earlier node: a
// combinational victim donates its first fanin (strictly earlier than both
// k and any reader), anything else is replaced by node 0. Cycle ops
// touching the victim are dropped; indices above k shift down.
std::optional<Scenario> RemoveNode(const Scenario& s, std::uint32_t k) {
  if (k == 0 || s.nodes.size() <= 1) return std::nullopt;
  const std::uint32_t repl =
      netlist::IsCombinational(s.nodes[k].kind) && !s.nodes[k].fanins.empty()
          ? s.nodes[k].fanins[0]
          : 0;
  const auto remap = [&](std::uint32_t f) {
    if (f == k) f = repl;
    return f > k ? f - 1 : f;
  };
  Scenario out;
  for (std::uint32_t i = 0; i < s.nodes.size(); ++i) {
    if (i == k) continue;
    NodeSpec node = s.nodes[i];
    for (std::uint32_t& f : node.fanins) f = remap(f);
    out.nodes.push_back(std::move(node));
  }
  for (const CycleSpec& cy : s.cycles) {
    CycleSpec nc;
    nc.reset = cy.reset;
    nc.unit_delay = cy.unit_delay;
    for (const ForceOp& f : cy.forces) {
      if (f.kind != ForceOp::kClear && f.node == k) continue;
      ForceOp nf = f;
      if (nf.kind != ForceOp::kClear) nf.node = remap(nf.node);
      nc.forces.push_back(nf);
    }
    for (const auto& [in, v] : cy.inputs) {
      if (in == k) continue;
      nc.inputs.emplace_back(remap(in), v);
    }
    out.cycles.push_back(std::move(nc));
  }
  return out;
}

}  // namespace

Scenario Shrink(const Scenario& failing, std::uint64_t* steps) {
  obs::Registry& reg = obs::Registry::Global();
  const auto accept = [&](Scenario& cur, Scenario cand) {
    if (!StillFails(cand)) return false;
    cur = std::move(cand);
    if (steps != nullptr) ++*steps;
    if (obs::Enabled()) reg.GetCounter("xcheck.shrink_steps").Add(1);
    return true;
  };

  Scenario cur = failing;
  bool progressed = true;
  for (int round = 0; progressed && round < 50; ++round) {
    progressed = false;
    // Drop whole cycles, latest first (later cycles depend on earlier state,
    // so trailing ones are the cheapest to lose).
    for (std::size_t c = cur.cycles.size(); c-- > 0 && cur.cycles.size() > 1;) {
      Scenario cand = cur;
      cand.cycles.erase(cand.cycles.begin() + static_cast<std::ptrdiff_t>(c));
      progressed |= accept(cur, std::move(cand));
    }
    // Delete gates.
    for (std::uint32_t k = static_cast<std::uint32_t>(cur.nodes.size());
         k-- > 1;) {
      if (k >= cur.nodes.size()) continue;
      std::optional<Scenario> cand = RemoveNode(cur, k);
      if (cand.has_value()) progressed |= accept(cur, *std::move(cand));
    }
    // Simplify surviving cycles field by field.
    for (std::size_t c = 0; c < cur.cycles.size(); ++c) {
      if (cur.cycles[c].reset) {
        Scenario cand = cur;
        cand.cycles[c].reset = false;
        progressed |= accept(cur, std::move(cand));
      }
      if (cur.cycles[c].unit_delay) {
        Scenario cand = cur;
        cand.cycles[c].unit_delay = false;
        progressed |= accept(cur, std::move(cand));
      }
      if (!cur.cycles[c].forces.empty()) {
        Scenario cand = cur;
        cand.cycles[c].forces.clear();
        progressed |= accept(cur, std::move(cand));
      }
      if (!cur.cycles[c].inputs.empty()) {
        Scenario cand = cur;
        cand.cycles[c].inputs.clear();
        progressed |= accept(cur, std::move(cand));
        bool any_x = false;
        for (const auto& [in, v] : cur.cycles[c].inputs) {
          any_x |= v == Trit::kX;
        }
        if (any_x) {
          cand = cur;
          for (auto& [in, v] : cand.cycles[c].inputs) {
            if (v == Trit::kX) v = Trit::kZero;
          }
          progressed |= accept(cur, std::move(cand));
        }
      }
    }
  }
  return cur;
}

MutationResult RunMutationCheck(const XcheckConfig& cfg) {
  MutationResult mr;
  mr.all_detected = true;
  for (const char* name : logicsim::kKernelMutationFailpoints) {
    guard::ClearFailpoints();
    guard::ArmFailpoint(name, "flag");
    MutationResult::PerMutation pm;
    pm.name = name;
    for (std::uint32_t i = 0; i < cfg.iters && !pm.detected; ++i) {
      Rng rng(CaseSeed(cfg.seed, i));
      const Scenario s = GenerateScenario(rng, cfg.gen);
      ++pm.cases_to_detect;
      const CaseResult r = RunScenario(s);
      if (!r.ok) {
        pm.detected = true;
        pm.detail = r.detail;
      }
    }
    mr.all_detected &= pm.detected;
    mr.mutations.push_back(std::move(pm));
  }
  // Leave the process in the state $PFD_FAILPOINTS asked for, not ours.
  guard::ClearFailpoints();
  guard::ArmFailpointsFromEnv();
  return mr;
}

}  // namespace pfd::xcheck
