#include "xcheck/gen.hpp"

#include <iterator>
#include <string>

#include "base/error.hpp"

namespace pfd::xcheck {

using netlist::GateId;
using netlist::GateKind;
using netlist::ModuleTag;

namespace {

std::uint32_t ArityFor(GateKind kind, Rng& rng) {
  switch (kind) {
    case GateKind::kBuf:
    case GateKind::kNot: return 1;
    case GateKind::kXor:
    case GateKind::kXnor: return 2;
    case GateKind::kMux2: return 3;
    case GateKind::kAnd:
    case GateKind::kOr:
    case GateKind::kNand:
    case GateKind::kNor:
      return 2 + static_cast<std::uint32_t>(rng.Below(3));  // 2..4
    default: return 0;
  }
}

GateKind PickCombKind(Rng& rng) {
  static constexpr GateKind kCombKinds[] = {
      GateKind::kBuf,  GateKind::kNot,  GateKind::kAnd,
      GateKind::kOr,   GateKind::kNand, GateKind::kNor,
      GateKind::kXor,  GateKind::kXnor, GateKind::kMux2,
  };
  return kCombKinds[rng.Below(std::size(kCombKinds))];
}

}  // namespace

Scenario GenerateScenario(Rng& rng, const GenConfig& cfg) {
  PFD_CHECK_MSG(cfg.min_gates >= 1 && cfg.min_gates <= cfg.max_gates,
                "bad gate count range");
  PFD_CHECK_MSG(cfg.min_cycles >= 1 && cfg.min_cycles <= cfg.max_cycles,
                "bad cycle count range");
  Scenario s;
  const std::uint32_t n =
      cfg.min_gates +
      static_cast<std::uint32_t>(rng.Below(cfg.max_gates - cfg.min_gates + 1));

  std::uint32_t dffs = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    NodeSpec node;
    if (i == 0) {
      node.kind = GateKind::kInput;  // guarantees a fanin pool and stimulus
    } else if (i + 1 == n) {
      // The last node is always combinational: it is the gate the
      // toggle_undercount kernel mutation silently drops, so it must carry
      // observable switching activity.
      node.kind = PickCombKind(rng);
    } else {
      const std::uint64_t roll = rng.Below(100);
      if (roll < 8) {
        node.kind = GateKind::kInput;
      } else if (roll < 12) {
        node.kind = rng.Chance(0.5) ? GateKind::kConst0 : GateKind::kConst1;
      } else if (roll < 26 && dffs < cfg.max_dffs) {
        node.kind = GateKind::kDff;
        ++dffs;
      } else {
        node.kind = PickCombKind(rng);
      }
    }
    if (netlist::IsCombinational(node.kind)) {
      const std::uint32_t arity = ArityFor(node.kind, rng);
      for (std::uint32_t k = 0; k < arity; ++k) {
        node.fanins.push_back(static_cast<std::uint32_t>(rng.Below(i)));
      }
    }
    s.nodes.push_back(std::move(node));
  }
  // DFF D-pins may reference any node (feedback loops included), so they
  // are filled once the full node list exists.
  for (NodeSpec& node : s.nodes) {
    if (node.kind == GateKind::kDff) {
      node.fanins.push_back(static_cast<std::uint32_t>(rng.Below(n)));
    }
  }

  std::vector<std::uint32_t> input_nodes;
  std::vector<std::uint32_t> forceable;  // anything but constants
  for (std::uint32_t i = 0; i < n; ++i) {
    if (s.nodes[i].kind == GateKind::kInput) input_nodes.push_back(i);
    if (s.nodes[i].kind != GateKind::kConst0 &&
        s.nodes[i].kind != GateKind::kConst1) {
      forceable.push_back(i);
    }
  }

  const std::uint32_t cycles =
      cfg.min_cycles + static_cast<std::uint32_t>(
                           rng.Below(cfg.max_cycles - cfg.min_cycles + 1));
  bool unit_delay = false;
  for (std::uint32_t c = 0; c < cycles; ++c) {
    CycleSpec cy;
    cy.reset = rng.Chance(cfg.reset_prob);
    if (rng.Chance(cfg.unit_delay_toggle_prob)) unit_delay = !unit_delay;
    cy.unit_delay = unit_delay;

    if (rng.Chance(cfg.clear_forces_prob)) {
      cy.forces.push_back(ForceOp{ForceOp::kClear, 0, 0, Trit::kZero});
    }
    while (cy.forces.size() < 3 && rng.Chance(cfg.force_prob)) {
      const std::uint32_t g =
          forceable[rng.Below(forceable.size())];
      const Trit v = rng.Chance(0.5) ? Trit::kOne : Trit::kZero;
      const std::uint32_t arity =
          static_cast<std::uint32_t>(s.nodes[g].fanins.size());
      if (arity > 0 && rng.Chance(0.4)) {
        cy.forces.push_back(ForceOp{
            ForceOp::kPin, g, static_cast<std::uint32_t>(rng.Below(arity)),
            v});
      } else {
        cy.forces.push_back(ForceOp{ForceOp::kOutput, g, 0, v});
      }
    }

    for (const std::uint32_t in : input_nodes) {
      if (rng.Chance(cfg.skip_input_prob)) continue;
      Trit v = Trit::kX;
      if (!rng.Chance(cfg.x_input_prob)) {
        v = rng.Chance(0.5) ? Trit::kOne : Trit::kZero;
      }
      cy.inputs.emplace_back(in, v);
    }
    s.cycles.push_back(std::move(cy));
  }
  return s;
}

netlist::Netlist BuildNetlist(const Scenario& s) {
  PFD_CHECK_MSG(!s.nodes.empty(), "scenario has no nodes");
  netlist::Netlist nl;
  std::vector<GateId> ids;
  ids.reserve(s.nodes.size());
  for (std::size_t i = 0; i < s.nodes.size(); ++i) {
    const NodeSpec& node = s.nodes[i];
    // Alternate module tags so every downstream module filter sees both.
    const ModuleTag tag =
        (i % 2 == 0) ? ModuleTag::kDatapath : ModuleTag::kController;
    const std::string name = "n" + std::to_string(i);
    GateId id = netlist::kNoGate;
    switch (node.kind) {
      case GateKind::kInput:
        id = nl.AddInput(name, tag);
        break;
      case GateKind::kDff:
        id = nl.AddDff(tag, name);
        break;
      default: {
        std::vector<GateId> fanins;
        for (const std::uint32_t f : node.fanins) fanins.push_back(ids[f]);
        id = nl.AddGate(node.kind, tag, fanins, name);
        break;
      }
    }
    PFD_CHECK_MSG(id == static_cast<GateId>(i),
                  "BuildNetlist id does not match node index");
    ids.push_back(id);
  }
  for (std::size_t i = 0; i < s.nodes.size(); ++i) {
    if (s.nodes[i].kind == GateKind::kDff) {
      nl.ConnectDff(ids[i], ids[s.nodes[i].fanins[0]]);
    }
  }
  nl.AddOutput(ids.back(), "out");
  return nl;
}

namespace {

const char* KindToken(GateKind kind) {
  switch (kind) {
    case GateKind::kInput: return "kInput";
    case GateKind::kConst0: return "kConst0";
    case GateKind::kConst1: return "kConst1";
    case GateKind::kBuf: return "kBuf";
    case GateKind::kNot: return "kNot";
    case GateKind::kAnd: return "kAnd";
    case GateKind::kOr: return "kOr";
    case GateKind::kNand: return "kNand";
    case GateKind::kNor: return "kNor";
    case GateKind::kXor: return "kXor";
    case GateKind::kXnor: return "kXnor";
    case GateKind::kMux2: return "kMux2";
    case GateKind::kDff: return "kDff";
  }
  return "kInput";
}

const char* TritToken(Trit t) {
  switch (t) {
    case Trit::kZero: return "Trit::kZero";
    case Trit::kOne: return "Trit::kOne";
    default: return "Trit::kX";
  }
}

}  // namespace

std::string ScenarioToCpp(const Scenario& s) {
  std::string out;
  out += "// xcheck repro: " + std::to_string(s.nodes.size()) + " nodes, " +
         std::to_string(s.cycles.size()) + " cycles.\n";
  out += "pfd::xcheck::Scenario s;\n";
  out += "using pfd::Trit;\n";
  out += "using pfd::netlist::GateKind;\n";
  out += "s.nodes = {\n";
  for (const NodeSpec& node : s.nodes) {
    out += "    {GateKind::";
    out += KindToken(node.kind);
    out += ", {";
    for (std::size_t k = 0; k < node.fanins.size(); ++k) {
      if (k > 0) out += ", ";
      out += std::to_string(node.fanins[k]);
    }
    out += "}},\n";
  }
  out += "};\n";
  for (const CycleSpec& cy : s.cycles) {
    out += "{\n  pfd::xcheck::CycleSpec c;\n";
    if (cy.reset) out += "  c.reset = true;\n";
    if (cy.unit_delay) out += "  c.unit_delay = true;\n";
    if (!cy.forces.empty()) {
      out += "  c.forces = {\n";
      for (const ForceOp& f : cy.forces) {
        const char* kind = f.kind == ForceOp::kOutput ? "kOutput"
                           : f.kind == ForceOp::kPin  ? "kPin"
                                                      : "kClear";
        out += "      {pfd::xcheck::ForceOp::";
        out += kind;
        out += ", " + std::to_string(f.node) + ", " + std::to_string(f.pin) +
               ", " + TritToken(f.value) + "},\n";
      }
      out += "  };\n";
    }
    if (!cy.inputs.empty()) {
      out += "  c.inputs = {";
      for (std::size_t k = 0; k < cy.inputs.size(); ++k) {
        if (k > 0) out += ", ";
        out += "{" + std::to_string(cy.inputs[k].first) + ", " +
               TritToken(cy.inputs[k].second) + "}";
      }
      out += "};\n";
    }
    out += "  s.cycles.push_back(c);\n}\n";
  }
  out += "const pfd::xcheck::CaseResult r = pfd::xcheck::RunScenario(s);\n";
  out += "EXPECT_TRUE(r.ok) << r.detail;\n";
  return out;
}

}  // namespace pfd::xcheck
