// Differential-oracle fuzzing of the compiled simulation kernel.
//
// RunScenario drives the production Simulator (levelized SoA kernel, fast
// paths, event-driven unit delay) and the naive RefSimulator (ref_sim.hpp)
// through the same scenario and miscompare-checks, after every cycle:
//
//   * every gate's full 64-lane value word against the splat of the
//     reference scalar (a lane-dependent bug cannot hide in lane 0);
//   * toggle and duty counters (compiled == 64 x reference);
//   * the per-level X watermark (zero-delay cycles only — the unit-delay
//     path leaves it stale by contract);
//   * the last_step_two_valued fast-path predicate;
//   * cycle counters; and, once per case, that rebuilding the netlist
//     reproduces the same StructuralHash the compiled program cached (the
//     golden-trace cache key would silently alias otherwise).
//
// On a miscompare, Shrink greedily minimizes the scenario — dropping
// cycles, deleting nodes (fanins remapped to earlier nodes), clearing
// forces/resets/X — as long as the case still fails, and ScenarioToCpp
// turns the survivor into a ready-to-paste regression test.
//
// RunMutationCheck is the harness's own proof of life: it arms each
// logicsim::kKernelMutationFailpoints entry (a "flag" guard failpoint
// compiled into the kernels that plants a deterministic bug) and requires
// the differential sweep to catch every one. A fuzzing harness that passes
// with a planted kernel bug is measuring nothing.
//
// Obs counters: xcheck.runs, xcheck.miscompares, xcheck.shrink_steps.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "xcheck/gen.hpp"

namespace pfd::xcheck {

// Outcome of one differential case. `ok == false` carries a human-readable
// first-divergence description in `detail`.
struct CaseResult {
  bool ok = true;
  std::string detail;
};

// Runs one scenario compiled-vs-reference. Throws pfd::Error only on a
// malformed scenario (the generator and shrinker never produce one).
CaseResult RunScenario(const Scenario& s);

struct XcheckConfig {
  std::uint64_t seed = 1;
  std::uint32_t iters = 200;
  bool shrink = true;
  GenConfig gen;
};

// The seed of sweep case `index`: splitmix-style mix so neighbouring
// indices land in unrelated Rng streams. Exposed so a failure printed as
// (seed, index) can be replayed as a single case.
std::uint64_t CaseSeed(std::uint64_t seed, std::uint32_t index);

struct XcheckResult {
  std::uint64_t cases_run = 0;
  std::uint64_t miscompares = 0;  // sweep stops at the first one
  // Valid when miscompares > 0:
  std::uint64_t failing_case_seed = 0;
  std::uint32_t failing_case_index = 0;
  std::string failure_detail;
  std::uint64_t shrink_steps = 0;
  Scenario repro;          // shrunk when cfg.shrink, else the raw case
  std::string repro_cpp;   // ScenarioToCpp(repro)
};

// Differential sweep over cfg.iters generated cases; stops at the first
// miscompare (shrinking it when cfg.shrink).
XcheckResult RunXcheck(const XcheckConfig& cfg);

// Greedy scenario minimization: returns the smallest found scenario that
// still fails RunScenario, bumping *steps once per accepted reduction.
Scenario Shrink(const Scenario& failing, std::uint64_t* steps);

struct MutationResult {
  struct PerMutation {
    std::string name;
    bool detected = false;
    std::uint64_t cases_to_detect = 0;  // sweep cases until first miscompare
    std::string detail;                 // the detecting divergence
  };
  std::vector<PerMutation> mutations;
  bool all_detected = false;
};

// Arms each kernel mutation failpoint in turn and re-runs the sweep,
// requiring a miscompare for every planted bug. Restores the failpoint
// state armed from $PFD_FAILPOINTS before returning.
MutationResult RunMutationCheck(const XcheckConfig& cfg);

}  // namespace pfd::xcheck
