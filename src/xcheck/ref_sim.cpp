#include "xcheck/ref_sim.hpp"

#include "base/error.hpp"

namespace pfd::xcheck {

using netlist::GateId;
using netlist::GateKind;

RefSimulator::RefSimulator(const netlist::Netlist& nl) : nl_(&nl) {
  value_.assign(nl.size(), Trit::kX);
  dff_next_.assign(nl.size(), Trit::kX);
  prev_.assign(nl.size(), Trit::kX);
  toggles_.assign(nl.size(), 0);
  duty_.assign(nl.size(), 0);
  out_force_.assign(nl.size(), OutForce{});
  Reset();
}

void RefSimulator::Reset() {
  for (GateId g = 0; g < value_.size(); ++g) {
    Trit t = Trit::kX;
    if (nl_->gate(g).kind == GateKind::kConst0) t = Trit::kZero;
    if (nl_->gate(g).kind == GateKind::kConst1) t = Trit::kOne;
    value_[g] = t;
    dff_next_[g] = Trit::kX;
    prev_[g] = t;
    toggles_[g] = 0;
    duty_[g] = 0;
  }
  cycles_ = 0;
  two_valued_ = false;
}

void RefSimulator::SetInput(GateId input, Trit t) {
  PFD_CHECK_MSG(nl_->gate(input).kind == GateKind::kInput,
                "SetInput on a non-input gate");
  value_[input] = t;
}

void RefSimulator::EnableToggleCounting(bool enable) {
  if (enable && !count_toggles_) prev_ = value_;
  count_toggles_ = enable;
}

void RefSimulator::ForceOutput(GateId g, Trit value) {
  PFD_CHECK_MSG(value != Trit::kX, "cannot force X");
  (value == Trit::kZero ? out_force_[g].sa0 : out_force_[g].sa1) = true;
}

void RefSimulator::ForcePin(GateId g, std::uint32_t pin, Trit value) {
  PFD_CHECK_MSG(value != Trit::kX, "cannot force X");
  PFD_CHECK_MSG(pin < nl_->Fanins(g).size(), "pin out of range");
  for (PinForce& pf : pin_forces_) {
    if (pf.gate == g && pf.pin == pin) {
      (value == Trit::kZero ? pf.sa0 : pf.sa1) = true;
      return;
    }
  }
  PinForce pf{g, pin};
  (value == Trit::kZero ? pf.sa0 : pf.sa1) = true;
  pin_forces_.push_back(pf);
}

void RefSimulator::ClearForces() {
  out_force_.assign(nl_->size(), OutForce{});
  pin_forces_.clear();
}

Trit RefSimulator::ApplyOutForce(GateId g, Trit t) const {
  const GateKind kind = nl_->gate(g).kind;
  // The production simulator never applies output forces to constants:
  // they are neither sources (step 1/2) nor instructions (settle), so the
  // registered masks are dead. Mirror that, don't "fix" it here.
  if (kind == GateKind::kConst0 || kind == GateKind::kConst1) return t;
  return Forced(t, out_force_[g].sa0, out_force_[g].sa1);
}

Trit RefSimulator::ReadFanin(GateId g, std::uint32_t pin,
                             const std::vector<Trit>& state) const {
  Trit t = state[nl_->Fanins(g)[pin]];
  for (const PinForce& pf : pin_forces_) {
    if (pf.gate == g && pf.pin == pin) t = Forced(t, pf.sa0, pf.sa1);
  }
  return t;
}

Trit RefSimulator::EvalGate(GateId g, const std::vector<Trit>& state) const {
  const GateKind kind = nl_->gate(g).kind;
  const std::size_t arity = nl_->Fanins(g).size();
  switch (kind) {
    case GateKind::kBuf: return ReadFanin(g, 0, state);
    case GateKind::kNot: return Not3(ReadFanin(g, 0, state));
    case GateKind::kAnd:
    case GateKind::kNand: {
      Trit acc = ReadFanin(g, 0, state);
      for (std::uint32_t k = 1; k < arity; ++k) {
        acc = And3(acc, ReadFanin(g, k, state));
      }
      return kind == GateKind::kNand ? Not3(acc) : acc;
    }
    case GateKind::kOr:
    case GateKind::kNor: {
      Trit acc = ReadFanin(g, 0, state);
      for (std::uint32_t k = 1; k < arity; ++k) {
        acc = Or3(acc, ReadFanin(g, k, state));
      }
      return kind == GateKind::kNor ? Not3(acc) : acc;
    }
    case GateKind::kXor:
      return Xor3(ReadFanin(g, 0, state), ReadFanin(g, 1, state));
    case GateKind::kXnor:
      return Not3(Xor3(ReadFanin(g, 0, state), ReadFanin(g, 1, state)));
    case GateKind::kMux2:
      return Mux3(ReadFanin(g, 0, state), ReadFanin(g, 1, state),
                  ReadFanin(g, 2, state));
    default:
      PFD_CHECK_MSG(false, "EvalGate on a non-combinational gate");
      return Trit::kX;
  }
}

void RefSimulator::SettleZeroDelay() {
  // Full re-sweeps in creation order until a sweep changes nothing. The
  // combinational graph is acyclic (Validate enforces it), so this reaches
  // the same unique fixpoint as level-order evaluation, within at most
  // depth+1 sweeps; the bound only guards structural corruption.
  const std::size_t bound = nl_->size() + 2;
  for (std::size_t sweep = 0;; ++sweep) {
    PFD_CHECK_MSG(sweep <= bound, "reference zero-delay settle diverged");
    bool changed = false;
    for (GateId g = 0; g < value_.size(); ++g) {
      if (!netlist::IsCombinational(nl_->gate(g).kind)) continue;
      const Trit nv = ApplyOutForce(g, EvalGate(g, value_));
      if (nv != value_[g]) {
        value_[g] = nv;
        changed = true;
      }
    }
    if (!changed) return;
  }
}

void RefSimulator::SettleUnitDelay() {
  // Jacobi full sweeps: one sub-step evaluates every combinational gate
  // against the previous sub-step's values, then commits all at once. A
  // gate whose fanins did not change re-evaluates to its old value, so the
  // per-sub-step transition sequence is identical to the production
  // simulator's event-driven frontier.
  const std::size_t bound = nl_->size() + 2;
  std::vector<Trit> next = value_;
  for (std::size_t substep = 0;; ++substep) {
    PFD_CHECK_MSG(substep <= bound, "reference unit-delay settle diverged");
    bool changed = false;
    for (GateId g = 0; g < value_.size(); ++g) {
      if (!netlist::IsCombinational(nl_->gate(g).kind)) continue;
      next[g] = ApplyOutForce(g, EvalGate(g, value_));
      if (next[g] == value_[g]) continue;
      changed = true;
      if (count_toggles_ && next[g] != Trit::kX && value_[g] != Trit::kX) {
        ++toggles_[g];  // a known 0<->1 edge of this sub-step
      }
    }
    if (!changed) return;
    value_ = next;
  }
}

void RefSimulator::Step() {
  const std::vector<GateId> dffs = nl_->DffIds();
  const std::vector<GateId> inputs = nl_->InputIds();

  // 1. Clock edge: commit captured D (first cycle keeps power-up X), then
  //    output forces on the register outputs.
  for (GateId d : dffs) {
    const Trit base = cycles_ > 0 ? dff_next_[d] : value_[d];
    value_[d] = ApplyOutForce(d, base);
  }

  // 2. Output forces on primary inputs. Stored, exactly like the compiled
  //    simulator: clearing the force later leaves the forced value behind
  //    until the input is driven again.
  for (GateId in : inputs) {
    value_[in] = ApplyOutForce(in, value_[in]);
  }

  // 3. Fast-path predicate (zero-delay only): every source fully known.
  bool two_valued = false;
  if (!unit_delay_) {
    two_valued = true;
    for (GateId in : inputs) two_valued &= value_[in] != Trit::kX;
    for (GateId d : dffs) two_valued &= value_[d] != Trit::kX;
  }

  // 4. Combinational settle.
  if (!unit_delay_) {
    SettleZeroDelay();
  } else {
    SettleUnitDelay();
  }
  two_valued_ = two_valued;

  // 5. Switching activity. Zero-delay: settled-to-settled for every net;
  //    unit-delay: combinational glitches were counted per sub-step, so
  //    only sequential/input nets count here. Transitions to or from X are
  //    never transitions; duty counts known-1 cycles of every net.
  if (count_toggles_) {
    for (GateId g = 0; g < value_.size(); ++g) {
      if (!unit_delay_ || !netlist::IsCombinational(nl_->gate(g).kind)) {
        if (prev_[g] != Trit::kX && value_[g] != Trit::kX &&
            prev_[g] != value_[g]) {
          ++toggles_[g];
        }
      }
      if (value_[g] == Trit::kOne) ++duty_[g];
    }
    prev_ = value_;
  }

  // 6. Capture next DFF state from the settled D pins (with pin forces).
  for (GateId d : dffs) {
    dff_next_[d] = ReadFanin(d, 0, value_);
  }

  ++cycles_;
}

}  // namespace pfd::xcheck
