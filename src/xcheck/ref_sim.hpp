// Deliberately naive reference simulator — the differential oracle.
//
// The production simulator (logicsim/simulator.hpp) earns its speed from
// machinery that is easy to get subtly wrong: levelized SoA instruction
// streams, a two-valued fast path that drops the known planes, an
// event-driven unit-delay worklist, packed 64-lane words. RefSimulator is
// the opposite end of the trade: one scalar Trit per net, the raw
// netlist::Netlist graph walked directly (no CompiledNetlist anywhere),
// full re-sweeps to fixpoint instead of levelization, and no caching of any
// kind. Every line is meant to be checkable against the semantics contract
// in simulator.hpp by inspection.
//
// The contract it mirrors, in Step() order:
//   1. DFF commit from the captured D (power-up X kept on the first cycle),
//      then output forces on DFFs;
//   2. output forces on primary inputs (stored, like the compiled sim —
//      a cleared force leaves the forced value behind until re-driven);
//   3. zero-delay: combinational re-sweeps in creation order until a sweep
//      changes nothing (the unique fixpoint of the acyclic graph — the same
//      values level-order evaluation produces);
//      unit-delay: Jacobi full sweeps, one sub-step per sweep, counting
//      known 0<->1 transitions of combinational nets per sub-step;
//   4. toggle/duty accounting (zero-delay: settled-to-settled for every
//      net; unit-delay: settled-to-settled for sequential/input nets only,
//      glitches were counted in 3); transitions to or from X never count;
//   5. DFF next-state capture from D with pin-0 forces applied.
//
// Forces mirror Simulator::ApplyForce exactly: stuck-at-0 wins where both
// polarities are registered, forcing only ever adds known-ness, and output
// forces on constant gates are ignored (the compiled simulator never
// applies them — constants are neither sources nor instructions).
//
// One scalar value per net corresponds to all 64 lanes of the production
// simulator carrying the same splat value; the differential driver
// (xcheck.hpp) drives both sides that way and multiplies reference toggle
// counts by 64.
#pragma once

#include <cstdint>
#include <vector>

#include "base/logic.hpp"
#include "netlist/netlist.hpp"

namespace pfd::xcheck {

class RefSimulator {
 public:
  explicit RefSimulator(const netlist::Netlist& nl);

  // Power-up: every net X (constants excepted), counters zeroed; registered
  // forces survive, as in the production simulator.
  void Reset();

  void SetInput(netlist::GateId input, Trit t);
  void EnableUnitDelay(bool enable) { unit_delay_ = enable; }
  void EnableToggleCounting(bool enable);

  void ForceOutput(netlist::GateId g, Trit value);
  void ForcePin(netlist::GateId g, std::uint32_t pin, Trit value);
  void ClearForces();

  void Step();

  Trit Value(netlist::GateId g) const { return value_[g]; }
  std::uint64_t ToggleCount(netlist::GateId g) const { return toggles_[g]; }
  std::uint64_t DutyCount(netlist::GateId g) const { return duty_[g]; }
  std::uint64_t cycles() const { return cycles_; }
  // True when the last Step ran with every source (input and committed DFF)
  // known under zero-delay timing — the fast-path predicate the compiled
  // simulator must agree on.
  bool last_step_two_valued() const { return two_valued_; }

 private:
  struct OutForce {
    bool sa0 = false;
    bool sa1 = false;
  };
  struct PinForce {
    netlist::GateId gate;
    std::uint32_t pin;
    bool sa0 = false;
    bool sa1 = false;
  };

  static Trit Forced(Trit t, bool sa0, bool sa1) {
    // Matches Simulator::ApplyForce bit algebra: sa0 wins over sa1.
    if (sa0) return Trit::kZero;
    if (sa1) return Trit::kOne;
    return t;
  }

  Trit ApplyOutForce(netlist::GateId g, Trit t) const;
  Trit ReadFanin(netlist::GateId g, std::uint32_t pin,
                 const std::vector<Trit>& state) const;
  Trit EvalGate(netlist::GateId g, const std::vector<Trit>& state) const;

  void SettleZeroDelay();
  void SettleUnitDelay();

  const netlist::Netlist* nl_;
  std::vector<Trit> value_;
  std::vector<Trit> dff_next_;
  std::vector<Trit> prev_;  // last counted settled values (toggle counting)
  std::vector<std::uint64_t> toggles_;
  std::vector<std::uint64_t> duty_;
  std::vector<OutForce> out_force_;
  std::vector<PinForce> pin_forces_;
  std::uint64_t cycles_ = 0;
  bool unit_delay_ = false;
  bool count_toggles_ = false;
  bool two_valued_ = false;
};

}  // namespace pfd::xcheck
