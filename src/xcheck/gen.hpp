// Randomized well-formed netlist + stimulus scenarios for the differential
// harness.
//
// A Scenario is a self-contained, serializable description of one
// differential test case: the circuit as an ordered list of NodeSpecs
// (node index == GateId after BuildNetlist — gates are created in list
// order) and the per-cycle stimulus program (input drives, stuck-at
// force/release, mid-run Reset, timing-model switches). Keeping the case
// in this plain-data form — rather than as a built Netlist — is what makes
// greedy shrinking (xcheck.hpp) and the ready-to-paste C++ repro emitter
// trivial.
//
// Well-formedness invariants (GenerateScenario produces them, the shrinker
// preserves them, BuildNetlist assumes them; Netlist::Validate re-checks):
//   * node 0 is a primary input;
//   * combinational fanins reference strictly earlier nodes (acyclic by
//     construction); DFF D-fanins may reference any node, including the
//     DFF itself (the register breaks the loop);
//   * fanin counts match ExpectedArity;
//   * forces never target constant gates (the production simulator
//     silently ignores output forces on constants — see ref_sim.hpp — so
//     such a force would test nothing), and never force X;
//   * pin-force pins are in range for the target's arity.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "base/logic.hpp"
#include "base/rng.hpp"
#include "netlist/netlist.hpp"

namespace pfd::xcheck {

struct NodeSpec {
  netlist::GateKind kind = netlist::GateKind::kInput;
  // Indices into Scenario::nodes. Combinational: strictly earlier nodes.
  // DFF: exactly one entry, any node (forward references allowed).
  std::vector<std::uint32_t> fanins;
};

struct ForceOp {
  enum Kind : std::uint8_t {
    kOutput,  // stuck-at on node's output, all lanes
    kPin,     // stuck-at on node's reading of fanin `pin`
    kClear,   // release every registered force
  };
  Kind kind = kOutput;
  std::uint32_t node = 0;
  std::uint32_t pin = 0;
  Trit value = Trit::kZero;
};

struct CycleSpec {
  bool reset = false;       // Reset() both simulators before this cycle
  bool unit_delay = false;  // timing model for this cycle
  std::vector<ForceOp> forces;
  // Input drives for this cycle: (node index, value). Inputs not listed
  // keep their previous value — deliberately, to cover the stored-state
  // path of SetInput.
  std::vector<std::pair<std::uint32_t, Trit>> inputs;
};

struct Scenario {
  std::vector<NodeSpec> nodes;
  std::vector<CycleSpec> cycles;
};

struct GenConfig {
  std::uint32_t min_gates = 4;
  std::uint32_t max_gates = 40;
  std::uint32_t max_dffs = 6;
  std::uint32_t min_cycles = 2;
  std::uint32_t max_cycles = 24;
  double x_input_prob = 0.15;          // X instead of a known input value
  double skip_input_prob = 0.10;       // leave an input un-driven this cycle
  double force_prob = 0.12;            // geometric: chance of each next force
  double clear_forces_prob = 0.06;
  double reset_prob = 0.04;
  double unit_delay_toggle_prob = 0.15;  // flip the timing model (sticky)
};

// Draws one well-formed scenario. Deterministic in (rng state, cfg).
Scenario GenerateScenario(Rng& rng, const GenConfig& cfg);

// Materializes the scenario's circuit. Gates are created in node order, so
// GateId == node index; the last node is registered as an output port.
netlist::Netlist BuildNetlist(const Scenario& s);

// Renders the scenario as a ready-to-paste C++ test-case body that rebuilds
// it and asserts RunScenario(s).ok.
std::string ScenarioToCpp(const Scenario& s);

}  // namespace pfd::xcheck
