#include "xcheck/fault_xcheck.hpp"

#include <algorithm>
#include <optional>
#include <utility>

#include "base/error.hpp"
#include "guard/guard.hpp"
#include "logicsim/golden_cache.hpp"
#include "netlist/netlist.hpp"
#include "obs/obs.hpp"

namespace pfd::xcheck {

using netlist::GateId;
using netlist::GateKind;

fault::TestPlan BuildTestPlan(const FaultCase& fc) {
  fault::TestPlan plan;
  if (fc.reset_node != FaultCase::kNoNode) plan.reset = fc.reset_node;
  for (const auto& op : fc.operand_bits) {
    plan.operand_bits.emplace_back(op.begin(), op.end());
  }
  plan.cycles_per_pattern = fc.cycles_per_pattern;
  plan.strobe_cycles = fc.strobe_cycles;
  plan.observe.assign(fc.observe.begin(), fc.observe.end());
  return plan;
}

namespace {

std::string DescribeFault(const netlist::Netlist& nl,
                          const fault::StuckFault& f, std::size_t index) {
  return "fault #" + std::to_string(index) + " (" + fault::FaultName(nl, f) +
         ")";
}

// One engine run of the campaign. Every engine shares one private golden
// cache (the serial and differential passes would otherwise populate the
// process-wide cache with thousands of throwaway fuzz circuits) and two
// worker threads, so the shard fan-out and lane compaction paths stay hot.
fault::FaultSimResult RunEngine(const netlist::Netlist& nl,
                                const fault::TestPlan& plan,
                                const FaultCase& fc,
                                fault::FaultSimEngine engine, int lanes,
                                logicsim::GoldenTraceCache& cache) {
  fault::FaultSimRequest req{nl,
                             {plan, fc.tpgr_seed, fc.num_patterns},
                             fc.faults,
                             engine};
  req.exec.threads = 2;
  req.golden_cache = &cache;
  req.lanes = lanes;
  return fault::RunFaultSim(req);
}

}  // namespace

CaseResult RunFaultCase(const FaultCase& fc) {
  Scenario shell;
  shell.nodes = fc.nodes;
  const netlist::Netlist nl = BuildNetlist(shell);
  nl.Validate();
  const fault::TestPlan plan = BuildTestPlan(fc);

  logicsim::GoldenTraceCache cache;
  const fault::FaultSimResult ref =
      RunEngine(nl, plan, fc, fault::FaultSimEngine::kSerial, 64, cache);
  if (!ref.run_status.ok()) {
    throw Error("fault xcheck reference run was not clean: " +
                ref.run_status.Describe());
  }

  // Each fast engine runs pinned at every supported lane width — the
  // per-fault contract is width-independence, so 256/512-lane shards must
  // agree with the 64-lane serial oracle fault for fault.
  for (const fault::FaultSimEngine engine :
       {fault::FaultSimEngine::kParallel,
        fault::FaultSimEngine::kDifferential}) {
    for (const int lanes : {64, 256, 512}) {
      const std::string name = std::string(fault::FaultSimEngineName(engine)) +
                               "@" + std::to_string(lanes);
      const fault::FaultSimResult got =
          RunEngine(nl, plan, fc, engine, lanes, cache);
      if (!got.run_status.ok()) {
        return {false,
                name + " run was not clean: " + got.run_status.Describe()};
      }
      if (got.patterns != ref.patterns) {
        return {false, name + " pattern-count miscompare: got " +
                           std::to_string(got.patterns) + ", serial ran " +
                           std::to_string(ref.patterns)};
      }
      for (std::size_t i = 0; i < fc.faults.size(); ++i) {
        if (got.status[i] != ref.status[i]) {
          return {false, name + " status miscompare on " +
                             DescribeFault(nl, fc.faults[i], i) + ": got " +
                             fault::FaultStatusName(got.status[i]) +
                             ", serial says " +
                             fault::FaultStatusName(ref.status[i])};
        }
        if (got.first_detect_pattern[i] != ref.first_detect_pattern[i]) {
          return {false,
                  name + " first-detect miscompare on " +
                      DescribeFault(nl, fc.faults[i], i) + ": got pattern " +
                      std::to_string(got.first_detect_pattern[i]) +
                      ", serial says " +
                      std::to_string(ref.first_detect_pattern[i])};
        }
      }
    }
  }
  return {};
}

FaultCase GenerateFaultCase(Rng& rng, const GenConfig& cfg) {
  FaultCase fc;
  {
    Scenario s = GenerateScenario(rng, cfg);
    fc.nodes = std::move(s.nodes);
  }
  const std::uint32_t n = static_cast<std::uint32_t>(fc.nodes.size());

  std::vector<std::uint32_t> inputs;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (fc.nodes[i].kind == GateKind::kInput) inputs.push_back(i);
  }

  // Carve the inputs into a reset pin (sometimes), TPGR operands of mixed
  // widths, and the occasional deliberately undriven input (held at
  // power-up X for the whole campaign — the engines must agree on X
  // propagation, not just on clean two-valued runs).
  std::size_t next_input = 0;
  if (inputs.size() >= 2 && rng.Chance(0.35)) {
    fc.reset_node = inputs[0];
    next_input = 1;
  }
  while (next_input < inputs.size()) {
    if (rng.Chance(0.10)) {  // leave this input undriven
      ++next_input;
      continue;
    }
    const std::size_t width = std::min<std::size_t>(
        1 + rng.Below(4), inputs.size() - next_input);
    fc.operand_bits.emplace_back(inputs.begin() + next_input,
                                 inputs.begin() + next_input + width);
    next_input += width;
  }

  fc.cycles_per_pattern = 1 + static_cast<int>(rng.Below(5));
  for (int c = 0; c < fc.cycles_per_pattern; ++c) {
    if (rng.Chance(0.4)) fc.strobe_cycles.push_back(c);
  }
  if (fc.strobe_cycles.empty()) {
    fc.strobe_cycles.push_back(
        static_cast<int>(rng.Below(fc.cycles_per_pattern)));
  }

  for (std::uint32_t i = 0; i + 1 < n; ++i) {
    if (rng.Chance(0.25)) fc.observe.push_back(i);
  }
  fc.observe.push_back(n - 1);  // the output port is always watched

  // Candidate faults: stem stuck-at-0/1 on every node (constants included —
  // a constant-stem force is inert in every engine, and staying inert in
  // *all* of them is part of the contract), plus branch faults on every
  // fanin pin.
  std::vector<fault::StuckFault> candidates;
  for (std::uint32_t g = 0; g < n; ++g) {
    const std::uint32_t arity =
        static_cast<std::uint32_t>(fc.nodes[g].fanins.size());
    for (std::uint32_t pin = 0; pin <= arity; ++pin) {
      candidates.push_back({g, pin, Trit::kZero});
      candidates.push_back({g, pin, Trit::kOne});
    }
  }
  // Sample without replacement (partial Fisher-Yates). The count crosses 64
  // often enough to exercise multi-shard campaigns in every engine.
  const std::size_t want = static_cast<std::size_t>(
      1 + rng.Below(std::min<std::uint64_t>(candidates.size(), 96)));
  for (std::size_t k = 0; k < want; ++k) {
    const std::size_t pick = k + rng.Below(candidates.size() - k);
    std::swap(candidates[k], candidates[pick]);
    fc.faults.push_back(candidates[k]);
  }

  fc.tpgr_seed = static_cast<std::uint32_t>(rng.Next()) | 1u;
  fc.num_patterns = 1 + static_cast<int>(rng.Below(20));
  return fc;
}

FaultXcheckResult RunFaultXcheck(const XcheckConfig& cfg) {
  FaultXcheckResult out;
  obs::Registry& reg = obs::Registry::Global();
  for (std::uint32_t i = 0; i < cfg.iters; ++i) {
    const std::uint64_t case_seed = CaseSeed(cfg.seed, i);
    Rng rng(case_seed);
    const FaultCase fc = GenerateFaultCase(rng, cfg.gen);
    if (obs::Enabled()) reg.GetCounter("fault_xcheck.runs").Add(1);
    const CaseResult r = RunFaultCase(fc);
    ++out.cases_run;
    if (r.ok) continue;
    if (obs::Enabled()) reg.GetCounter("fault_xcheck.miscompares").Add(1);
    out.miscompares = 1;
    out.failing_case_seed = case_seed;
    out.failing_case_index = i;
    out.failure_detail = r.detail;
    out.repro = cfg.shrink ? ShrinkFaultCase(fc, &out.shrink_steps) : fc;
    out.repro_cpp = FaultCaseToCpp(out.repro);
    break;
  }
  return out;
}

namespace {

bool StillFails(const FaultCase& fc) {
  try {
    return !RunFaultCase(fc).ok;
  } catch (const Error&) {
    return false;  // a reduction that broke well-formedness is rejected
  }
}

// Deletes node k, remapping every reference to an earlier node exactly like
// xcheck's scenario reducer: a combinational victim donates its first fanin,
// anything else is replaced by node 0. Campaign references to the victim
// are dropped (faults, operand bits, observations) rather than remapped —
// a fault migrating to another gate would not be a reduction of the same
// failure.
std::optional<FaultCase> RemoveFaultNode(const FaultCase& fc,
                                         std::uint32_t k) {
  if (k == 0 || fc.nodes.size() <= 1) return std::nullopt;
  const std::uint32_t repl =
      netlist::IsCombinational(fc.nodes[k].kind) && !fc.nodes[k].fanins.empty()
          ? fc.nodes[k].fanins[0]
          : 0;
  const auto remap = [&](std::uint32_t f) {
    if (f == k) f = repl;
    return f > k ? f - 1 : f;
  };
  FaultCase out;
  for (std::uint32_t i = 0; i < fc.nodes.size(); ++i) {
    if (i == k) continue;
    NodeSpec node = fc.nodes[i];
    for (std::uint32_t& f : node.fanins) f = remap(f);
    out.nodes.push_back(std::move(node));
  }
  out.reset_node = fc.reset_node == k || fc.reset_node == FaultCase::kNoNode
                       ? FaultCase::kNoNode
                       : remap(fc.reset_node);
  for (const auto& op : fc.operand_bits) {
    std::vector<std::uint32_t> bits;
    for (const std::uint32_t b : op) {
      if (b != k) bits.push_back(remap(b));
    }
    if (!bits.empty()) out.operand_bits.push_back(std::move(bits));
  }
  out.cycles_per_pattern = fc.cycles_per_pattern;
  out.strobe_cycles = fc.strobe_cycles;
  for (const std::uint32_t g : fc.observe) {
    if (g != k) out.observe.push_back(remap(g));
  }
  if (out.observe.empty()) return std::nullopt;
  for (const fault::StuckFault& f : fc.faults) {
    if (f.gate == k) continue;
    fault::StuckFault nf = f;
    nf.gate = remap(nf.gate);
    // The remap can shrink a donor gate's arity only by deleting the gate
    // itself, so surviving pin faults stay in range; stem faults always do.
    out.faults.push_back(nf);
  }
  if (out.faults.empty()) return std::nullopt;
  out.tpgr_seed = fc.tpgr_seed;
  out.num_patterns = fc.num_patterns;
  return out;
}

}  // namespace

FaultCase ShrinkFaultCase(const FaultCase& failing, std::uint64_t* steps) {
  obs::Registry& reg = obs::Registry::Global();
  const auto accept = [&](FaultCase& cur, FaultCase cand) {
    if (!StillFails(cand)) return false;
    cur = std::move(cand);
    if (steps != nullptr) ++*steps;
    if (obs::Enabled()) reg.GetCounter("fault_xcheck.shrink_steps").Add(1);
    return true;
  };

  FaultCase cur = failing;
  bool progressed = true;
  for (int round = 0; progressed && round < 50; ++round) {
    progressed = false;
    // Drop faults, latest first — the usual failure needs exactly one.
    for (std::size_t i = cur.faults.size(); i-- > 0 && cur.faults.size() > 1;) {
      FaultCase cand = cur;
      cand.faults.erase(cand.faults.begin() + static_cast<std::ptrdiff_t>(i));
      progressed |= accept(cur, std::move(cand));
    }
    // Fewer patterns: halve, then peel one at a time.
    while (cur.num_patterns > 1) {
      FaultCase cand = cur;
      cand.num_patterns = std::max(1, cur.num_patterns / 2);
      if (!accept(cur, std::move(cand))) break;
      progressed = true;
    }
    if (cur.num_patterns > 1) {
      FaultCase cand = cur;
      --cand.num_patterns;
      progressed |= accept(cur, std::move(cand));
    }
    // Delete gates.
    for (std::uint32_t k = static_cast<std::uint32_t>(cur.nodes.size());
         k-- > 1;) {
      if (k >= cur.nodes.size()) continue;
      std::optional<FaultCase> cand = RemoveFaultNode(cur, k);
      if (cand.has_value()) progressed |= accept(cur, *std::move(cand));
    }
    // Trim the plan: strobes, observation nets, operands, reset.
    for (std::size_t i = cur.strobe_cycles.size();
         i-- > 0 && cur.strobe_cycles.size() > 1;) {
      FaultCase cand = cur;
      cand.strobe_cycles.erase(cand.strobe_cycles.begin() +
                               static_cast<std::ptrdiff_t>(i));
      progressed |= accept(cur, std::move(cand));
    }
    for (std::size_t i = cur.observe.size();
         i-- > 0 && cur.observe.size() > 1;) {
      FaultCase cand = cur;
      cand.observe.erase(cand.observe.begin() +
                         static_cast<std::ptrdiff_t>(i));
      progressed |= accept(cur, std::move(cand));
    }
    for (std::size_t i = cur.operand_bits.size(); i-- > 0;) {
      FaultCase cand = cur;
      cand.operand_bits.erase(cand.operand_bits.begin() +
                              static_cast<std::ptrdiff_t>(i));
      progressed |= accept(cur, std::move(cand));
    }
    if (cur.reset_node != FaultCase::kNoNode) {
      FaultCase cand = cur;
      cand.reset_node = FaultCase::kNoNode;
      progressed |= accept(cur, std::move(cand));
    }
    // Shorter patterns, keeping the surviving strobes in range.
    if (cur.cycles_per_pattern > 1) {
      FaultCase cand = cur;
      --cand.cycles_per_pattern;
      std::erase_if(cand.strobe_cycles, [&](int c) {
        return c >= cand.cycles_per_pattern;
      });
      if (!cand.strobe_cycles.empty()) {
        progressed |= accept(cur, std::move(cand));
      }
    }
  }
  return cur;
}

namespace {

const char* NodeKindToken(GateKind kind) {
  switch (kind) {
    case GateKind::kInput: return "kInput";
    case GateKind::kConst0: return "kConst0";
    case GateKind::kConst1: return "kConst1";
    case GateKind::kBuf: return "kBuf";
    case GateKind::kNot: return "kNot";
    case GateKind::kAnd: return "kAnd";
    case GateKind::kOr: return "kOr";
    case GateKind::kNand: return "kNand";
    case GateKind::kNor: return "kNor";
    case GateKind::kXor: return "kXor";
    case GateKind::kXnor: return "kXnor";
    case GateKind::kMux2: return "kMux2";
    case GateKind::kDff: return "kDff";
  }
  return "kInput";
}

}  // namespace

std::string FaultCaseToCpp(const FaultCase& fc) {
  std::string out;
  out += "// fault xcheck repro: " + std::to_string(fc.nodes.size()) +
         " nodes, " + std::to_string(fc.faults.size()) + " faults, " +
         std::to_string(fc.num_patterns) + " patterns.\n";
  out += "pfd::xcheck::FaultCase fc;\n";
  out += "using pfd::Trit;\n";
  out += "using pfd::netlist::GateKind;\n";
  out += "fc.nodes = {\n";
  for (const NodeSpec& node : fc.nodes) {
    out += "    {GateKind::";
    out += NodeKindToken(node.kind);
    out += ", {";
    for (std::size_t k = 0; k < node.fanins.size(); ++k) {
      if (k > 0) out += ", ";
      out += std::to_string(node.fanins[k]);
    }
    out += "}},\n";
  }
  out += "};\n";
  if (fc.reset_node != FaultCase::kNoNode) {
    out += "fc.reset_node = " + std::to_string(fc.reset_node) + ";\n";
  }
  if (!fc.operand_bits.empty()) {
    out += "fc.operand_bits = {";
    for (std::size_t i = 0; i < fc.operand_bits.size(); ++i) {
      if (i > 0) out += ", ";
      out += "{";
      for (std::size_t b = 0; b < fc.operand_bits[i].size(); ++b) {
        if (b > 0) out += ", ";
        out += std::to_string(fc.operand_bits[i][b]);
      }
      out += "}";
    }
    out += "};\n";
  }
  out += "fc.cycles_per_pattern = " + std::to_string(fc.cycles_per_pattern) +
         ";\n";
  out += "fc.strobe_cycles = {";
  for (std::size_t i = 0; i < fc.strobe_cycles.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(fc.strobe_cycles[i]);
  }
  out += "};\n";
  out += "fc.observe = {";
  for (std::size_t i = 0; i < fc.observe.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(fc.observe[i]);
  }
  out += "};\n";
  out += "fc.faults = {\n";
  for (const fault::StuckFault& f : fc.faults) {
    out += "    {" + std::to_string(f.gate) + ", " + std::to_string(f.pin) +
           ", " + (f.value == Trit::kOne ? "Trit::kOne" : "Trit::kZero") +
           "},\n";
  }
  out += "};\n";
  out += "fc.tpgr_seed = " + std::to_string(fc.tpgr_seed) + "u;\n";
  out += "fc.num_patterns = " + std::to_string(fc.num_patterns) + ";\n";
  out += "const pfd::xcheck::CaseResult r = pfd::xcheck::RunFaultCase(fc);\n";
  out += "EXPECT_TRUE(r.ok) << r.detail;\n";
  return out;
}

MutationResult RunFaultMutationCheck(const XcheckConfig& cfg) {
  MutationResult mr;
  mr.all_detected = true;
  for (const char* name : fault::kFaultSimMutationFailpoints) {
    guard::ClearFailpoints();
    guard::ArmFailpoint(name, "flag");
    MutationResult::PerMutation pm;
    pm.name = name;
    for (std::uint32_t i = 0; i < cfg.iters && !pm.detected; ++i) {
      Rng rng(CaseSeed(cfg.seed, i));
      const FaultCase fc = GenerateFaultCase(rng, cfg.gen);
      ++pm.cases_to_detect;
      const CaseResult r = RunFaultCase(fc);
      if (!r.ok) {
        pm.detected = true;
        pm.detail = r.detail;
      }
    }
    mr.all_detected &= pm.detected;
    mr.mutations.push_back(std::move(pm));
  }
  // Leave the process in the state $PFD_FAILPOINTS asked for, not ours.
  guard::ClearFailpoints();
  guard::ArmFailpointsFromEnv();
  return mr;
}

}  // namespace pfd::xcheck
