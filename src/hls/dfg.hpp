// Data-flow graph IR — the behavioural input to high-level synthesis.
//
// A Dfg is a pure acyclic computation over uniform-width inputs and
// constants (the paper's benchmarks are straight-line bodies: the Diffeq
// Euler step, the FACET block, Horner evaluation of a cubic). Operations
// reference values created earlier, so the graph is acyclic by
// construction.
//
// Comparison (kLess) results are 1-bit and may only feed outputs — this
// matches the architecture style, where the loop condition is computed and
// exported rather than consumed by the linear controller.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "base/bitvec.hpp"
#include "base/error.hpp"
#include "rtl/datapath.hpp"

namespace pfd::hls {

struct ValueRef {
  enum class Kind : std::uint8_t { kInput, kConst, kOp };
  Kind kind = Kind::kInput;
  std::uint32_t index = 0;

  static ValueRef Input(std::uint32_t i) { return {Kind::kInput, i}; }
  static ValueRef Const(std::uint32_t i) { return {Kind::kConst, i}; }
  static ValueRef Op(std::uint32_t i) { return {Kind::kOp, i}; }

  friend bool operator==(const ValueRef&, const ValueRef&) = default;
};

struct DfgOp {
  std::string name;
  rtl::FuKind kind = rtl::FuKind::kAdd;
  ValueRef lhs;
  ValueRef rhs;
};

struct DfgOutput {
  std::string name;
  ValueRef value;
};

// Loop-carried dependence: when the body repeats, `update`'s value becomes
// the next iteration's `input`.
struct LoopCarry {
  std::uint32_t input = 0;  // DFG input index
  std::uint32_t update = 0; // DFG op index
};

// Optional while-loop semantics: the body re-executes as long as the
// condition (a kLess op) is true, with the carried values flowing back into
// their input registers. This is the paper's actual Diffeq ("solve until
// x1 >= a") and — crucially — gives the controller a status input from the
// datapath: real controller-datapath feedback.
struct LoopSpec {
  std::uint32_t condition_op = 0;  // must be a kLess op
  std::vector<LoopCarry> carries;
};

class Dfg {
 public:
  explicit Dfg(int width) : width_(width) {}

  int width() const { return width_; }

  ValueRef AddInput(std::string name) {
    input_names_.push_back(std::move(name));
    return ValueRef::Input(static_cast<std::uint32_t>(input_names_.size() - 1));
  }
  ValueRef AddConstant(std::uint32_t value) {
    constants_.emplace_back(width_, value);
    return ValueRef::Const(static_cast<std::uint32_t>(constants_.size() - 1));
  }
  ValueRef AddOp(std::string name, rtl::FuKind kind, ValueRef lhs,
                 ValueRef rhs) {
    CheckRef(lhs);
    CheckRef(rhs);
    PFD_CHECK_MSG(!IsCompare(lhs) && !IsCompare(rhs),
                  "comparison results may only feed outputs");
    ops_.push_back({std::move(name), kind, lhs, rhs});
    return ValueRef::Op(static_cast<std::uint32_t>(ops_.size() - 1));
  }
  void AddOutput(std::string name, ValueRef value) {
    CheckRef(value);
    outputs_.push_back({std::move(name), value});
  }

  // Declares while-loop semantics (see LoopSpec). Call after creating the
  // involved ops.
  void SetLoop(ValueRef condition, std::vector<LoopCarry> carries) {
    PFD_CHECK_MSG(condition.kind == ValueRef::Kind::kOp &&
                      ops_[condition.index].kind == rtl::FuKind::kLess,
                  "loop condition must be a comparison op");
    for (const LoopCarry& c : carries) {
      PFD_CHECK_MSG(c.input < input_names_.size(), "bad carry input");
      PFD_CHECK_MSG(c.update < ops_.size(), "bad carry update op");
      PFD_CHECK_MSG(ops_[c.update].kind != rtl::FuKind::kLess,
                    "carry update cannot be a comparison");
    }
    loop_ = LoopSpec{condition.index, std::move(carries)};
  }
  const std::optional<LoopSpec>& loop() const { return loop_; }

  const std::vector<std::string>& input_names() const { return input_names_; }
  const std::vector<BitVec>& constants() const { return constants_; }
  const std::vector<DfgOp>& ops() const { return ops_; }
  const std::vector<DfgOutput>& outputs() const { return outputs_; }

  int ValueWidth(const ValueRef& v) const {
    return IsCompare(v) ? 1 : width_;
  }

  // Every op result must be consumed by another op or exported; dead ops
  // would silently change the fault universe, so they are rejected.
  void Validate() const;

 private:
  bool IsCompare(const ValueRef& v) const {
    return v.kind == ValueRef::Kind::kOp &&
           ops_[v.index].kind == rtl::FuKind::kLess;
  }
  void CheckRef(const ValueRef& v) const {
    switch (v.kind) {
      case ValueRef::Kind::kInput:
        PFD_CHECK_MSG(v.index < input_names_.size(), "dangling input ref");
        break;
      case ValueRef::Kind::kConst:
        PFD_CHECK_MSG(v.index < constants_.size(), "dangling const ref");
        break;
      case ValueRef::Kind::kOp:
        PFD_CHECK_MSG(v.index < ops_.size(), "op ref to later op");
        break;
    }
  }

  int width_;
  std::vector<std::string> input_names_;
  std::vector<BitVec> constants_;
  std::vector<DfgOp> ops_;
  std::vector<DfgOutput> outputs_;
  std::optional<LoopSpec> loop_;
};

}  // namespace pfd::hls
