#include "hls/hls.hpp"

#include <algorithm>
#include <sstream>

#include "obs/trace.hpp"

namespace pfd::hls {

using rtl::FuKind;
using rtl::Source;

void Dfg::Validate() const {
  std::vector<bool> used(ops_.size(), false);
  for (const DfgOp& op : ops_) {
    if (op.lhs.kind == ValueRef::Kind::kOp) used[op.lhs.index] = true;
    if (op.rhs.kind == ValueRef::Kind::kOp) used[op.rhs.index] = true;
  }
  for (const DfgOutput& out : outputs_) {
    if (out.value.kind == ValueRef::Kind::kOp) used[out.value.index] = true;
    PFD_CHECK_MSG(out.value.kind != ValueRef::Kind::kConst,
                  "constant outputs are not supported");
  }
  for (std::size_t o = 0; o < ops_.size(); ++o) {
    PFD_CHECK_MSG(used[o], "dead op (result never used): " + ops_[o].name);
  }
  std::vector<bool> input_used(input_names_.size(), false);
  for (const DfgOp& op : ops_) {
    if (op.lhs.kind == ValueRef::Kind::kInput) input_used[op.lhs.index] = true;
    if (op.rhs.kind == ValueRef::Kind::kInput) input_used[op.rhs.index] = true;
  }
  for (const DfgOutput& out : outputs_) {
    if (out.value.kind == ValueRef::Kind::kInput) {
      input_used[out.value.index] = true;
    }
  }
  for (std::size_t i = 0; i < input_names_.size(); ++i) {
    PFD_CHECK_MSG(input_used[i], "dead input: " + input_names_[i]);
  }
  PFD_CHECK_MSG(!outputs_.empty(), "DFG has no outputs");
}

const Variable& HlsResult::VarOf(const ValueRef& v) const {
  PFD_CHECK_MSG(v.kind != ValueRef::Kind::kConst,
                "constants are not variables");
  for (const Variable& var : variables) {
    if (var.value == v) return var;
  }
  PFD_CHECK_MSG(false, "no variable for value");
  return variables.front();
}

std::string HlsResult::BindingReport() const {
  std::ostringstream os;
  os << num_steps << " control steps\n";
  for (std::size_t r = 0; r < reg_variables.size(); ++r) {
    os << datapath.regs()[r].name << ":";
    for (std::uint32_t vi : reg_variables[r]) {
      const Variable& v = variables[vi];
      os << "  " << v.name << " [" << v.def_step << ", ";
      if (v.last_use == Variable::kPersist) {
        os << "hold";
      } else {
        os << v.last_use;
      }
      os << "]";
    }
    os << "\n";
  }
  return os.str();
}

namespace {

struct ScheduleOut {
  std::vector<int> step;  // per op, 1-based
  int num_steps = 0;
};

ScheduleOut ListSchedule(const Dfg& dfg, const HlsConfig& cfg) {
  const auto& ops = dfg.ops();
  const std::size_t n = ops.size();

  // ASAP levels.
  std::vector<int> asap(n, 1);
  for (std::size_t o = 0; o < n; ++o) {
    for (const ValueRef& v : {ops[o].lhs, ops[o].rhs}) {
      if (v.kind == ValueRef::Kind::kOp) {
        asap[o] = std::max(asap[o], asap[v.index] + 1);
      }
    }
  }
  int cp = 1;
  for (int a : asap) cp = std::max(cp, a);

  // ALAP urgency relative to the critical path. A loop condition gets the
  // lowest urgency so it lands in the final step (the controller samples it
  // from there through HOLD).
  std::vector<int> alap(n, cp);
  if (dfg.loop()) alap[dfg.loop()->condition_op] = cp + 1;
  for (std::size_t o = n; o-- > 0;) {
    // Consumers were created after o, so a reverse scan sees them all.
    for (std::size_t c = o + 1; c < n; ++c) {
      for (const ValueRef& v : {ops[c].lhs, ops[c].rhs}) {
        if (v.kind == ValueRef::Kind::kOp && v.index == o) {
          alap[o] = std::min(alap[o], alap[c] - 1);
        }
      }
    }
  }

  // Resource-constrained list scheduling.
  ScheduleOut out;
  out.step.assign(n, 0);
  std::size_t scheduled = 0;
  int t = 0;
  while (scheduled < n) {
    ++t;
    PFD_CHECK_MSG(t < 4096, "scheduler failed to converge");
    std::map<FuKind, int> capacity;
    std::vector<std::size_t> ready;
    for (std::size_t o = 0; o < n; ++o) {
      if (out.step[o] != 0) continue;
      bool ok = true;
      for (const ValueRef& v : {ops[o].lhs, ops[o].rhs}) {
        if (v.kind == ValueRef::Kind::kOp &&
            (out.step[v.index] == 0 || out.step[v.index] >= t)) {
          ok = false;
        }
      }
      if (ok) ready.push_back(o);
    }
    std::sort(ready.begin(), ready.end(), [&](std::size_t a, std::size_t b) {
      return alap[a] != alap[b] ? alap[a] < alap[b] : a < b;
    });
    int step_budget = cfg.max_ops_per_step > 0
                          ? cfg.max_ops_per_step
                          : static_cast<int>(n);
    for (std::size_t o : ready) {
      if (step_budget == 0) break;
      int& cap = capacity.try_emplace(ops[o].kind, cfg.ResourceFor(ops[o].kind))
                     .first->second;
      if (cap > 0) {
        --cap;
        --step_budget;
        out.step[o] = t;
        ++scheduled;
      }
    }
  }
  out.num_steps = t;
  return out;
}

}  // namespace

HlsResult RunHls(const Dfg& dfg, const HlsConfig& cfg) {
  obs::Span span("hls.run_hls",
                 obs::Span::Args({{"ops", static_cast<std::int64_t>(
                                       dfg.ops().size())}}));
  dfg.Validate();
  const auto& ops = dfg.ops();
  const int width = dfg.width();

  HlsResult res;
  const ScheduleOut sched = ListSchedule(dfg, cfg);
  res.op_step = sched.step;
  res.num_steps = sched.num_steps;
  const int t_max = sched.num_steps;

  // ---- variables and lifespans -------------------------------------------
  auto is_output = [&](const ValueRef& v) {
    for (const DfgOutput& o : dfg.outputs()) {
      if (o.value == v) return true;
    }
    return false;
  };
  auto last_use_of = [&](const ValueRef& v) {
    int last = -1;
    for (std::size_t c = 0; c < ops.size(); ++c) {
      if (ops[c].lhs == v || ops[c].rhs == v) {
        last = std::max(last, sched.step[c]);
      }
    }
    if (is_output(v)) return Variable::kPersist;
    return last < 0 ? 0 : last;
  };
  for (std::uint32_t i = 0; i < dfg.input_names().size(); ++i) {
    const ValueRef v = ValueRef::Input(i);
    res.variables.push_back(
        {v, dfg.input_names()[i], dfg.ValueWidth(v), 0, last_use_of(v), 0});
  }
  for (std::uint32_t o = 0; o < ops.size(); ++o) {
    const ValueRef v = ValueRef::Op(o);
    res.variables.push_back(
        {v, ops[o].name, dfg.ValueWidth(v), sched.step[o], last_use_of(v), 0});
  }

  // While-loop adjustments: carried inputs live until replaced by their
  // update; everything the next iteration needs (non-carried inputs, carry
  // updates, the condition's operands) persists across iterations.
  std::map<std::uint32_t, std::uint32_t> carry_target;  // update var -> input var
  if (dfg.loop()) {
    const LoopSpec& loop = *dfg.loop();
    PFD_CHECK_MSG(sched.step[loop.condition_op] == t_max,
                  "loop condition must be schedulable in the final step");
    const auto n_in = static_cast<std::uint32_t>(dfg.input_names().size());
    std::vector<bool> carried(n_in, false);
    for (const LoopCarry& c : loop.carries) {
      PFD_CHECK_MSG(!carried[c.input], "input carried twice");
      carried[c.input] = true;
      Variable& in_var = res.variables[c.input];
      Variable& up_var = res.variables[n_in + c.update];
      PFD_CHECK_MSG(in_var.last_use <= up_var.def_step ||
                        in_var.last_use == Variable::kPersist,
                    "carried input read after its update: " + in_var.name);
      in_var.last_use = up_var.def_step;
      up_var.last_use = Variable::kPersist;
      carry_target.emplace(n_in + c.update, c.input);
    }
    for (std::uint32_t i = 0; i < n_in; ++i) {
      if (!carried[i]) res.variables[i].last_use = Variable::kPersist;
    }
    for (const ValueRef& v :
         {ops[loop.condition_op].lhs, ops[loop.condition_op].rhs}) {
      if (v.kind == ValueRef::Kind::kInput) {
        // already persistent (carried operands persist via their update)
      } else if (v.kind == ValueRef::Kind::kOp &&
                 carry_target.find(n_in + v.index) == carry_target.end()) {
        res.variables[n_in + v.index].last_use = Variable::kPersist;
      }
    }
  }

  // ---- left-edge register binding ----------------------------------------
  std::vector<std::uint32_t> order(res.variables.size());
  for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    const Variable& va = res.variables[a];
    const Variable& vb = res.variables[b];
    return va.def_step != vb.def_step ? va.def_step < vb.def_step : a < b;
  });
  struct RegState {
    int width;
    int end;  // last_use of the most recent occupant
  };
  std::vector<RegState> reg_state;
  for (std::uint32_t vi : order) {
    Variable& var = res.variables[vi];
    std::uint32_t chosen = static_cast<std::uint32_t>(reg_state.size());
    const auto carry_it = carry_target.find(vi);
    if (carry_it != carry_target.end()) {
      // Loop carry: the update must land in its input's register (the input
      // has def 0, so it is always bound by now).
      chosen = res.variables[carry_it->second].reg;
      PFD_CHECK_MSG(reg_state[chosen].width == var.width,
                    "loop carry width mismatch: " + var.name);
      PFD_CHECK_MSG(reg_state[chosen].end <= var.def_step,
                    "loop carry register still occupied: " + var.name);
    } else if (cfg.register_sharing) {
      for (std::uint32_t r = 0; r < reg_state.size(); ++r) {
        if (reg_state[r].width == var.width &&
            reg_state[r].end <= var.def_step) {
          chosen = r;
          break;
        }
      }
    }
    if (chosen == reg_state.size()) {
      reg_state.push_back({var.width, var.last_use});
      res.reg_variables.emplace_back();
    } else {
      reg_state[chosen].end = var.last_use;
    }
    var.reg = chosen;
    res.reg_variables[chosen].push_back(vi);
  }
  const std::size_t num_regs = reg_state.size();

  // ---- FU binding ----------------------------------------------------------
  // slot_of_op: (kind, slot) chosen per step in deterministic op order. With
  // spread_fu_binding, ops rotate through the instances across steps.
  std::vector<int> op_slot(ops.size(), 0);
  std::map<FuKind, int> rotation;
  for (int s = 1; s <= t_max; ++s) {
    std::map<FuKind, int> next_slot;
    for (std::size_t o = 0; o < ops.size(); ++o) {
      if (sched.step[o] != s) continue;
      int& slot = next_slot.try_emplace(ops[o].kind, 0).first->second;
      if (cfg.spread_fu_binding) {
        int& rot = rotation.try_emplace(ops[o].kind, 0).first->second;
        op_slot[o] = (rot + slot) % cfg.ResourceFor(ops[o].kind);
      } else {
        op_slot[o] = slot;
      }
      ++slot;
    }
    if (cfg.spread_fu_binding) {
      for (auto& [kind, used] : next_slot) {
        int& rot = rotation.try_emplace(kind, 0).first->second;
        rot = (rot + used) % cfg.ResourceFor(kind);
      }
    }
  }

  // ---- build the rtl datapath ---------------------------------------------
  rtl::Datapath& dp = res.datapath;
  for (const std::string& name : dfg.input_names()) {
    dp.AddInput(name, width);
  }
  for (std::size_t c = 0; c < dfg.constants().size(); ++c) {
    dp.AddConstant("c" + std::to_string(dfg.constants()[c].value()),
                   dfg.constants()[c]);
  }
  for (std::uint32_t r = 0; r < num_regs; ++r) {
    dp.AddRegister("REG" + std::to_string(r), reg_state[r].width);
  }

  auto operand_source = [&](const ValueRef& v) -> Source {
    if (v.kind == ValueRef::Kind::kConst) return Source::Const(v.index);
    return Source::Reg(res.VarOf(v).reg);
  };

  // FU instances in deterministic (kind, slot) order.
  std::map<std::pair<FuKind, int>, std::uint32_t> fu_index;
  struct PortUse {
    int step;
    Source src;
  };
  std::map<std::pair<FuKind, int>, std::vector<PortUse>> lhs_uses, rhs_uses;
  for (std::size_t o = 0; o < ops.size(); ++o) {
    const auto key = std::make_pair(ops[o].kind, op_slot[o]);
    lhs_uses[key].push_back({sched.step[o], operand_source(ops[o].lhs)});
    rhs_uses[key].push_back({sched.step[o], operand_source(ops[o].rhs)});
  }

  // Unique sources in order of first use (ascending step).
  auto unique_sources = [](std::vector<PortUse> uses) {
    std::stable_sort(uses.begin(), uses.end(),
                     [](const PortUse& a, const PortUse& b) {
                       return a.step < b.step;
                     });
    std::vector<Source> srcs;
    for (const PortUse& u : uses) {
      if (std::find(srcs.begin(), srcs.end(), u.src) == srcs.end()) {
        srcs.push_back(u.src);
      }
    }
    return srcs;
  };

  // port source -> (Source feeding FU port, optional mux index).
  struct PortNet {
    Source src;
    std::optional<std::uint32_t> mux;
    std::vector<Source> mux_inputs;
  };
  std::map<std::pair<FuKind, int>, PortNet> lhs_net, rhs_net;
  auto build_port = [&](const std::vector<PortUse>& uses,
                        const std::string& port_name) {
    PortNet net;
    const std::vector<Source> srcs = unique_sources(uses);
    if (srcs.size() == 1) {
      net.src = srcs[0];
    } else {
      const std::uint32_t mux = dp.AddMux(port_name, width, srcs);
      net.src = Source::Mux(mux);
      net.mux = mux;
      net.mux_inputs = srcs;
    }
    return net;
  };
  for (const auto& [key, uses] : lhs_uses) {
    const std::string fu_name = std::string(rtl::FuKindName(key.first)) +
                                std::to_string(key.second);
    lhs_net[key] = build_port(uses, "M_" + fu_name + "_a");
    rhs_net[key] = build_port(rhs_uses[key], "M_" + fu_name + "_b");
    fu_index[key] = dp.AddFu(fu_name, key.first, width, lhs_net[key].src,
                             rhs_net[key].src);
  }
  res.op_fu.resize(ops.size());
  for (std::size_t o = 0; o < ops.size(); ++o) {
    res.op_fu[o] = fu_index[{ops[o].kind, op_slot[o]}];
  }

  // Register input networks: (step, source) writes.
  std::vector<std::vector<PortUse>> reg_writes(num_regs);
  for (const Variable& var : res.variables) {
    if (var.value.kind == ValueRef::Kind::kInput) {
      reg_writes[var.reg].push_back({0, Source::Input(var.value.index)});
    } else {
      reg_writes[var.reg].push_back(
          {var.def_step, Source::Fu(res.op_fu[var.value.index])});
    }
  }
  res.reg_mux.assign(num_regs, std::nullopt);
  std::vector<std::vector<Source>> reg_mux_inputs(num_regs);
  for (std::uint32_t r = 0; r < num_regs; ++r) {
    const std::vector<Source> srcs = unique_sources(reg_writes[r]);
    PFD_CHECK_MSG(!srcs.empty(), "register with no writers");
    if (srcs.size() == 1) {
      dp.SetRegisterInput(r, srcs[0]);
    } else {
      const std::uint32_t mux = dp.AddMux(
          "M_" + dp.regs()[r].name, reg_state[r].width, srcs);
      dp.SetRegisterInput(r, Source::Mux(mux));
      res.reg_mux[r] = mux;
      reg_mux_inputs[r] = srcs;
    }
  }

  for (const DfgOutput& out : dfg.outputs()) {
    dp.AddOutput(out.name, Source::Reg(res.VarOf(out.value).reg));
  }
  dp.Finalize();

  // ---- control extraction --------------------------------------------------
  const int num_states = t_max + 2;  // RESET + CS1..CSn + HOLD
  const std::size_t num_muxes = dp.muxes().size();
  // Per-register load matrix and per-mux select matrix.
  std::vector<std::vector<std::uint8_t>> reg_load(
      num_states, std::vector<std::uint8_t>(num_regs, 0));
  std::vector<std::vector<std::optional<std::uint32_t>>> mux_sel(
      num_states,
      std::vector<std::optional<std::uint32_t>>(num_muxes, std::nullopt));

  auto select_index = [&](const std::vector<Source>& inputs,
                          const Source& src) {
    const auto it = std::find(inputs.begin(), inputs.end(), src);
    PFD_CHECK_MSG(it != inputs.end(), "mux input lookup failed");
    return static_cast<std::uint32_t>(it - inputs.begin());
  };
  auto set_reg_write = [&](int state, std::uint32_t r, const Source& src) {
    PFD_CHECK_MSG(reg_load[state][r] == 0,
                  "two writes to one register in one step");
    reg_load[state][r] = 1;
    if (res.reg_mux[r]) {
      mux_sel[state][*res.reg_mux[r]] = select_index(reg_mux_inputs[r], src);
    }
  };

  // RESET: load the input variables from the input ports.
  for (const Variable& var : res.variables) {
    if (var.value.kind == ValueRef::Kind::kInput) {
      set_reg_write(0, var.reg, Source::Input(var.value.index));
    }
  }
  // CS1..CSn.
  for (std::size_t o = 0; o < ops.size(); ++o) {
    const int state = sched.step[o];  // state index == step (RESET is 0)
    const auto key = std::make_pair(ops[o].kind, op_slot[o]);
    // FU operand selects.
    if (lhs_net[key].mux) {
      mux_sel[state][*lhs_net[key].mux] =
          select_index(lhs_net[key].mux_inputs, operand_source(ops[o].lhs));
    }
    if (rhs_net[key].mux) {
      mux_sel[state][*rhs_net[key].mux] =
          select_index(rhs_net[key].mux_inputs, operand_source(ops[o].rhs));
    }
    // Result write.
    set_reg_write(state, res.VarOf(ValueRef::Op(static_cast<std::uint32_t>(o))).reg,
                  Source::Fu(res.op_fu[o]));
  }
  // HOLD state: everything idle (all zeros / don't cares) — trailing entry
  // already initialised that way.

  // While-loop: the controller samples the comparator while sitting in the
  // trailing states, so the comparator's operand routing must stay a *care*
  // from the condition step through HOLD.
  if (dfg.loop()) {
    const LoopSpec& loop = *dfg.loop();
    const std::size_t o = loop.condition_op;
    const int t_c = sched.step[o];
    const auto key = std::make_pair(ops[o].kind, op_slot[o]);
    for (const PortNet* net : {&lhs_net[key], &rhs_net[key]}) {
      if (!net->mux) continue;
      const auto pinned_value = mux_sel[t_c][*net->mux];
      PFD_CHECK(pinned_value.has_value());
      for (int s = t_c + 1; s < num_states; ++s) {
        if (!mux_sel[s][*net->mux]) mux_sel[s][*net->mux] = pinned_value;
      }
    }
    res.loop.enabled = true;
    res.loop.cond_fu = res.op_fu[o];
    res.loop.cond_step = t_c;
    res.loop.carries = loop.carries;
  }

  // ---- load-line merging ----------------------------------------------------
  std::vector<std::vector<std::uint8_t>> columns(num_regs);
  for (std::uint32_t r = 0; r < num_regs; ++r) {
    for (int s = 0; s < num_states; ++s) columns[r].push_back(reg_load[s][r]);
  }
  res.load_map.regs_of_line.clear();
  std::vector<int> line_of_reg(num_regs, -1);
  for (std::uint32_t r = 0; r < num_regs; ++r) {
    if (cfg.merge_load_lines) {
      for (std::size_t l = 0; l < res.load_map.regs_of_line.size(); ++l) {
        if (columns[res.load_map.regs_of_line[l][0]] == columns[r]) {
          line_of_reg[r] = static_cast<int>(l);
          break;
        }
      }
    }
    if (line_of_reg[r] < 0) {
      line_of_reg[r] = static_cast<int>(res.load_map.regs_of_line.size());
      res.load_map.regs_of_line.emplace_back();
    }
    res.load_map.regs_of_line[line_of_reg[r]].push_back(r);
  }
  const int num_lines = res.load_map.NumLines();

  // ---- final control spec ----------------------------------------------------
  rtl::ControlSpec& spec = res.control;
  spec.num_load_lines = num_lines;
  spec.num_muxes = static_cast<int>(num_muxes);
  for (const rtl::Mux& m : dp.muxes()) {
    spec.mux_select_bits.push_back(m.SelectBits());
  }
  spec.states.resize(num_states);
  for (int s = 0; s < num_states; ++s) {
    spec.states[s].load.assign(num_lines, 0);
    for (int l = 0; l < num_lines; ++l) {
      spec.states[s].load[l] =
          reg_load[s][res.load_map.regs_of_line[l][0]];
    }
    spec.states[s].select = mux_sel[s];
  }
  spec.state_names.push_back("RESET");
  for (int s = 1; s <= t_max; ++s) {
    spec.state_names.push_back("CS" + std::to_string(s));
  }
  spec.state_names.push_back("HOLD");
  spec.Validate();
  return res;
}

}  // namespace pfd::hls
