// High-level synthesis: schedule, bind, and generate the RTL architecture
// plus the controller's behavioural specification.
//
// The flow reproduces the SYNTEST-style synthesis the paper's examples came
// from:
//   1. resource-constrained list scheduling (priority = ALAP urgency);
//   2. variable lifespan analysis (Figure 5 of the paper) — a variable is
//      live from the end of its defining step to the beginning of its last
//      reading step; output variables stay live through HOLD;
//   3. left-edge register binding (variables with disjoint lifespans share a
//      register), one register class per width;
//   4. functional-unit binding (fixed-function FUs, one op per FU per step);
//   5. mux generation for FU operand ports and register inputs (single-source
//      connections stay direct wires);
//   6. control extraction: per-state load bits and mux selects, with selects
//      don't-care in every state where the mux is inactive;
//   7. optional merging of identical register load columns into shared load
//      lines (the paper's Facet example relies on registers that "load in
//      parallel, driven by the same load line").
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "hls/dfg.hpp"
#include "rtl/control.hpp"
#include "rtl/datapath.hpp"

namespace pfd::hls {

struct HlsConfig {
  // Available FU instances per kind; kinds absent from the map get 1.
  std::map<rtl::FuKind, int> resources;
  bool merge_load_lines = true;
  // Left-edge register sharing. When off, every variable gets its own
  // register (a SYNTEST-like, less aggressive allocation — closer to the
  // paper's 11-register Diffeq datapath).
  bool register_sharing = true;
  // Cap on total operations scheduled per control step (0 = unlimited).
  // Lower caps stretch the schedule, growing the controller's state space
  // (and with it the don't-care-rich logic where SFR faults live).
  int max_ops_per_step = 0;
  // Round-robin ops of a kind across all available FU instances (instead of
  // packing instance 0 first). Spreading leaves each FU inactive — and its
  // operand-mux selects don't-care — in more states, which is where the
  // paper's select-line SFR faults come from.
  bool spread_fu_binding = false;

  int ResourceFor(rtl::FuKind kind) const {
    auto it = resources.find(kind);
    return it == resources.end() ? 1 : it->second;
  }
};

// A variable of the data flow: a DFG input or an op result.
struct Variable {
  ValueRef value;
  std::string name;
  int width = 4;
  // Lifespan: defined at the end of step `def_step` (inputs load during the
  // RESET step, i.e. def_step 0; ops during their scheduled step 1..T);
  // last read during step `last_use`. kPersist = live through HOLD.
  int def_step = 0;
  int last_use = 0;
  std::uint32_t reg = 0;  // bound register

  static constexpr int kPersist = 1 << 20;
};

// While-loop synthesis results (see Dfg::SetLoop). The condition is
// computed by the final control step; the controller re-enters CS1 from
// HOLD while the (registered) condition holds, with carried values bound
// into their input registers.
struct LoopInfo {
  bool enabled = false;
  std::uint32_t cond_fu = 0;  // datapath FU computing the condition
  int cond_step = 0;          // control step of the comparison (== num_steps)
  std::vector<LoopCarry> carries;
};

struct HlsResult {
  rtl::Datapath datapath;
  rtl::ControlSpec control;     // load lines AFTER merging
  rtl::LoadLineMap load_map;
  LoopInfo loop;

  int num_steps = 0;            // computation steps (CS1..CSn)
  std::vector<int> op_step;     // per DFG op
  std::vector<std::uint32_t> op_fu;  // per DFG op: datapath FU index
  std::vector<Variable> variables;   // inputs first, then op results
  // Per register: which variables it hosts (indices into `variables`).
  std::vector<std::vector<std::uint32_t>> reg_variables;
  // Per register: the datapath mux feeding it, if any.
  std::vector<std::optional<std::uint32_t>> reg_mux;

  const Variable& VarOf(const ValueRef& v) const;

  // Human-readable lifespan/binding report (Figure 5 style).
  std::string BindingReport() const;
};

HlsResult RunHls(const Dfg& dfg, const HlsConfig& config);

}  // namespace pfd::hls
