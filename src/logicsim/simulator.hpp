// Cycle-based, 64-lane, three-valued gate-level simulator.
//
// Each of the 64 bit-lanes of a Word3 is an independent simulated machine.
// The two production engines built on top map lanes differently:
//   * pattern-parallel (power / detection runs): all lanes share one circuit
//     configuration and carry independent test patterns;
//   * fault-parallel (fault classification): lane 0 is the fault-free
//     machine and lanes 1..63 each carry one injected stuck-at fault,
//     sharing a single test pattern.
//
// Two timing models:
//   * zero-delay (default): combinational gates settle once per cycle in
//     topological order — one potential transition per net per cycle;
//   * unit-delay: every gate takes one sub-step, so hazards (glitches)
//     propagate and are counted as real transitions. The settled values are
//     provably identical to zero-delay (acyclic logic), only the switching
//     activity differs; the glitch-power ablation uses this mode.
// DFFs commit at the clock edge that starts a cycle. A cycle proceeds as:
//
//   sim.SetInput(...);   // drive primary inputs for cycle t
//   sim.Step();          // commit DFFs (edge), settle logic, capture D
//
// Power-up state of every DFF is X, reproducing the paper's discussion of
// registers that "keep whatever value they had at boot-up".
//
// Stuck-at forcing: the simulator supports forcing lanes of a gate's output
// (stem fault) or of one gate's reading of a fanin (branch / input-pin
// fault). The fault module drives these hooks; they are inert (and nearly
// free) when no forces are registered.
//
// Toggle counting: when enabled, counts 0<->1 output transitions per gate
// summed over lanes — exactly the switching activity the power model needs.
// Transitions to or from X are not counted.
#pragma once

#include <cstdint>
#include <vector>

#include "base/logic.hpp"
#include "netlist/netlist.hpp"
#include "obs/obs.hpp"

namespace pfd::logicsim {

class Simulator {
 public:
  explicit Simulator(const netlist::Netlist& nl);

  const netlist::Netlist& nl() const { return *nl_; }

  // Returns all state (DFFs, values, cycle/toggle counters) to power-up;
  // keeps registered forces.
  void Reset();

  // --- primary inputs -----------------------------------------------------
  void SetInput(netlist::GateId input, Word3 w);
  void SetInputAllLanes(netlist::GateId input, Trit t) {
    SetInput(input, Splat(t));
  }

  // --- stepping -----------------------------------------------------------
  // One full clock cycle: DFF commit, combinational settle, toggle count,
  // next-state capture.
  void Step();
  std::uint64_t cycles() const { return cycles_; }

  // Unit-delay timing (see header comment). May be toggled between cycles.
  void EnableUnitDelay(bool enable) { unit_delay_ = enable; }
  bool unit_delay() const { return unit_delay_; }

  // --- observation --------------------------------------------------------
  Word3 Value(netlist::GateId g) const { return value_[g]; }
  Trit ValueLane(netlist::GateId g, int lane) const {
    return GetLane(value_[g], lane);
  }

  // --- stuck-at forcing ----------------------------------------------------
  // Forces lanes of gate g's *output*: lanes in mask read as `value`.
  void ForceOutput(netlist::GateId g, Trit value, std::uint64_t lane_mask);
  // Forces lanes of gate g's reading of its pin-th fanin (pin is an index
  // into Fanins(g)); other readers of that net are unaffected.
  void ForcePin(netlist::GateId g, std::uint32_t pin, Trit value,
                std::uint64_t lane_mask);
  void ClearForces();

  // --- switching activity ---------------------------------------------------
  void EnableToggleCounting(bool enable);
  void ResetToggleCounts();
  // Total 0<->1 transitions of gate g's output, summed over lanes and cycles.
  std::uint64_t ToggleCount(netlist::GateId g) const { return toggles_[g]; }
  // Lane-cycles in which gate g's output was a known 1 (accumulated while
  // toggle counting is enabled). The power model uses this to charge gated
  // register clocks only on cycles when their load line is active.
  std::uint64_t DutyCount(netlist::GateId g) const { return duty_[g]; }

 private:
  struct PinForce {
    netlist::GateId gate;
    std::uint32_t pin;
    std::uint64_t sa0 = 0;
    std::uint64_t sa1 = 0;
  };

  Word3 ReadFanin(netlist::GateId g, std::uint32_t pin,
                  netlist::GateId src) const;
  Word3 EvalGate(netlist::GateId g) const;
  static Word3 ApplyForce(Word3 w, std::uint64_t sa0, std::uint64_t sa1) {
    w.known |= sa0 | sa1;
    w.val = (w.val | sa1) & ~sa0;
    return w;
  }

  const netlist::Netlist* nl_;
  std::vector<Word3> value_;
  std::vector<Word3> dff_next_;
  std::vector<Word3> prev_value_;  // settled values of the previous cycle

  // Output forces, dense (two words per gate; zero when inactive).
  std::vector<std::uint64_t> out_sa0_;
  std::vector<std::uint64_t> out_sa1_;
  // Pin forces, sparse; per-gate flag avoids the scan on the fast path.
  std::vector<PinForce> pin_forces_;
  std::vector<std::uint8_t> has_pin_force_;

  bool count_toggles_ = false;
  bool unit_delay_ = false;
  std::vector<Word3> sub_next_;  // unit-delay double buffer
  std::vector<std::uint64_t> toggles_;
  std::vector<std::uint64_t> duty_;
  std::uint64_t cycles_ = 0;

  // Observability counters (cached handles; bumped once per Step, and only
  // when the registry is enabled — see obs/obs.hpp).
  obs::Counter* obs_cycles_ = nullptr;
  obs::Counter* obs_gate_evals_ = nullptr;
  obs::Counter* obs_substeps_ = nullptr;
};

}  // namespace pfd::logicsim
