// Cycle-based, width-generic (64/256/512-lane), three-valued gate-level
// simulator.
//
// A simulator carries 64 * lane_words() independent ternary lanes per gate,
// stored as lane_words() Word3s per gate in lane-word-strided SoA planes
// (lane l = word l/64, bit l%64). Every ternary operator is pure bitwise
// per 64-bit word, so a wide machine is exactly lane_words() 64-lane
// machines evaluated in lockstep — widening can never change per-lane
// results, only how many lanes one settle pass retires. The two production
// engines map lanes differently:
//   * pattern-parallel (power / detection runs): all lanes share one circuit
//     configuration and carry independent test patterns (these callers run
//     the historical 64-lane width);
//   * fault-parallel (fault classification): lane 0 is the fault-free
//     machine and the remaining lanes each carry one injected stuck-at
//     fault, sharing a single test pattern.
//
// Evaluation runs on a compiled program (logicsim/compiled.hpp): the gate
// graph is levelized once into contiguous instruction streams. The hot
// zero-delay settle loops live in logicsim/kernels.hpp, specialized per
// lane-word count and per SIMD backend (scalar / AVX2 / AVX-512, selected
// at construction from simd::Active() — see base/simd.hpp for the
// PFD_SIMD / --simd resolution rules). Two settle kernels share the
// program:
//
//   * three-valued (general): full Word3 semantics, used while any X can
//     reach the logic. Each level records an "any X present" watermark
//     (OR-folded across lane words).
//   * two-valued fast path: once every source (primary input and committed
//     DFF) is fully known, every downstream value is fully known too — the
//     Word3 operators map known inputs to known outputs, and forces only
//     add known-ness. The kernel then drops the known planes entirely
//     (boolean ops on the val planes, half the memory traffic). Entering
//     the fast path saturates the known planes once; X reintroduction
//     (Reset(), an X driven on an input) falls back to three-valued on the
//     next Step. The mode is re-decided every Step from the sources, so
//     the switchover is exact, never heuristic.
//
// Two timing models:
//   * zero-delay (default): combinational gates settle once per cycle in
//     level order — one potential transition per net per cycle;
//   * unit-delay: every gate takes one sub-step, so hazards (glitches)
//     propagate and are counted as real transitions. The settled values are
//     provably identical to zero-delay (acyclic logic), only the switching
//     activity differs; the glitch-power ablation uses this mode. The
//     sub-step sweep is event-driven: only instructions whose fanins
//     changed in the previous sub-step are re-evaluated (Jacobi commits —
//     a sub-step reads only the previous sub-step's values — so the
//     fixpoint and the per-sub-step transition counts are identical to the
//     full re-sweep it replaces). The unit-delay path always runs
//     three-valued, on portable per-word loops (it is an ablation path,
//     not a campaign path).
// DFFs commit at the clock edge that starts a cycle. A cycle proceeds as:
//
//   sim.SetInput(...);   // drive primary inputs for cycle t
//   sim.Step();          // commit DFFs (edge), settle logic, capture D
//
// Power-up state of every DFF is X, reproducing the paper's discussion of
// registers that "keep whatever value they had at boot-up".
//
// Stuck-at forcing: the simulator supports forcing lanes of a gate's output
// (stem fault) or of one gate's reading of a fanin (branch / input-pin
// fault). Lane selection is a width-generic LaneMask (base/logic.hpp);
// words beyond this simulator's width are ignored, so kAllLanes always
// means "every lane". The fault module drives these hooks; they are inert
// (and nearly free) when no forces are registered. A force can only make a
// lane more known, so forcing never exits the two-valued fast path.
//
// Toggle counting: when enabled, counts 0<->1 output transitions per gate
// summed over lanes — exactly the switching activity the power model needs.
// Transitions to or from X are not counted.
//
// Guard probe: SetGuardProbe attaches a guard::Checker that the settle
// loops poll at level (zero-delay) / sub-step (unit-delay) boundaries; a
// tripped checker aborts the Step by throwing guard::Tripped. After such a
// throw the simulator state is mid-settle and must be Reset() before
// reuse. Not attached by default — Step() then costs one null check per
// level.
//
// Simulators are copyable; copies share the immutable compiled program (and
// kernel table) but own their state planes (the Monte Carlo power engine
// copies a warmed-up simulator per batch).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "base/logic.hpp"
#include "logicsim/compiled.hpp"
#include "logicsim/kernels.hpp"
#include "netlist/netlist.hpp"
#include "obs/obs.hpp"

namespace pfd::guard {
class Checker;
}  // namespace pfd::guard

namespace pfd::logicsim {

// Kernel mutation failpoints: guard "flag" failpoints compiled into the
// settle kernels that, when armed (ArmFailpoint(name, "flag") or
// PFD_FAILPOINTS=name=flag), plant a deliberate, deterministic bug. They
// exist to prove the xcheck differential harness actually catches kernel
// miscompiles — a harness that passes with a planted bug is not testing
// anything. Disarmed cost: one relaxed atomic load per Step.
inline constexpr const char* kKernelMutationFailpoints[] = {
    "xcheck.mutate.skip_level",     // two-valued settle skips the last level
    "xcheck.mutate.stale_known",    // fast-path entry skips the known-plane
                                    // saturation and watermark clear
    "xcheck.mutate.frontier_off_by_one",  // unit-delay settle drops the last
                                          // frontier instruction per sub-step
    "xcheck.mutate.toggle_undercount",    // last gate's toggles/duty not
                                          // accumulated
};

class Simulator {
 public:
  // `lane_words` Word3s per gate (1 = the historical 64 lanes; 4 = 256; 8 =
  // 512). The settle kernels for the width are resolved from simd::Active()
  // at construction.
  explicit Simulator(const netlist::Netlist& nl, int lane_words = 1);
  // Construct on a pre-compiled program for `nl` (skips Compile; callers
  // constructing many simulators over one netlist — the fault engines —
  // resolve the program once and share it). `program` must have been
  // compiled from a netlist structurally identical to `nl` (checked via
  // StructuralHash).
  Simulator(const netlist::Netlist& nl,
            std::shared_ptr<const CompiledNetlist> program,
            int lane_words = 1);

  const netlist::Netlist& nl() const { return *nl_; }
  // The shared compiled program this simulator executes.
  const CompiledNetlist& program() const { return *prog_; }

  // Lane width of this simulator: 64-bit lane words per gate / total lanes.
  int lane_words() const { return words_; }
  int lanes() const { return words_ * kLaneWordBits; }

  // Returns all state (DFFs, values, cycle/toggle counters) to power-up;
  // keeps registered forces.
  void Reset();

  // --- primary inputs -----------------------------------------------------
  // Drives the same 64-lane pattern into every lane word (lane l receives
  // bit l%64 of `w`). The pattern-parallel engines drive distinct per-lane
  // patterns at lane_words() == 1, where this is exactly the historical
  // behaviour; the fault engines drive lane-uniform stimulus at any width.
  void SetInput(netlist::GateId input, Word3 w);
  void SetInputAllLanes(netlist::GateId input, Trit t) {
    SetInput(input, Splat(t));
  }

  // --- stepping -----------------------------------------------------------
  // One full clock cycle: DFF commit, combinational settle, toggle count,
  // next-state capture.
  void Step();
  std::uint64_t cycles() const { return cycles_; }

  // Unit-delay timing (see header comment). May be toggled between cycles.
  void EnableUnitDelay(bool enable) {
    if (enable && !unit_delay_) ud_all_dirty_ = true;
    unit_delay_ = enable;
  }
  bool unit_delay() const { return unit_delay_; }

  // True when the previous Step() ran the two-valued fast path (all
  // sources fully known, zero-delay timing).
  bool last_step_two_valued() const { return two_valued_; }

  // Per-level "any X present" watermark recorded by the last three-valued
  // zero-delay settle: bit-OR over the level's gates (and lane words) of
  // ~known. All zero after a two-valued step. Index space is
  // program().levels().
  const std::vector<std::uint64_t>& level_x_watermark() const {
    return level_x_;
  }

  // Attach (or detach, with nullptr) a cooperative-cancellation probe; see
  // header comment. The pointer is borrowed and copied by simulator copies.
  void SetGuardProbe(const guard::Checker* checker) {
    guard_probe_ = checker;
  }

  // --- observation --------------------------------------------------------
  // Lanes 0..63 (lane word 0) of gate g.
  Word3 Value(netlist::GateId g) const {
    return {val_[g * words_], known_[g * words_]};
  }
  // Lane word `w` (lanes 64w .. 64w+63) of gate g; w < lane_words().
  Word3 ValueWord(netlist::GateId g, int w) const {
    return {val_[g * words_ + w], known_[g * words_ + w]};
  }
  Trit ValueLane(netlist::GateId g, int lane) const {
    return GetLane(ValueWord(g, lane / kLaneWordBits), lane % kLaneWordBits);
  }

  // Packs lane 0 of every gate's settled val/known planes into bit arrays
  // (bit g of word g/64; both arrays hold (num_gates+63)/64 words, zeroed
  // here). This is the per-cycle golden snapshot the differential fault
  // engine records: the golden machine is lane-uniform, so one bit per gate
  // per plane captures the whole state.
  void PackLane0(std::uint64_t* val_bits, std::uint64_t* known_bits) const;

  // --- stuck-at forcing ----------------------------------------------------
  // Forces lanes of gate g's *output*: lanes in `mask` read as `value`.
  // Mask words beyond lane_words() are ignored. The mask-less overloads
  // force every lane.
  void ForceOutput(netlist::GateId g, Trit value, const LaneMask& mask);
  void ForceOutput(netlist::GateId g, Trit value) {
    ForceOutput(g, value, kAllLanes);
  }
  // Forces lanes of gate g's reading of its pin-th fanin (pin is an index
  // into Fanins(g)); other readers of that net are unaffected.
  void ForcePin(netlist::GateId g, std::uint32_t pin, Trit value,
                const LaneMask& mask);
  void ForcePin(netlist::GateId g, std::uint32_t pin, Trit value) {
    ForcePin(g, pin, value, kAllLanes);
  }
  void ClearForces();

  // --- switching activity ---------------------------------------------------
  void EnableToggleCounting(bool enable);
  void ResetToggleCounts();
  // Total 0<->1 transitions of gate g's output, summed over lanes and cycles.
  std::uint64_t ToggleCount(netlist::GateId g) const { return toggles_[g]; }
  // Lane-cycles in which gate g's output was a known 1 (accumulated while
  // toggle counting is enabled). The power model uses this to charge gated
  // register clocks only on cycles when their load line is active.
  std::uint64_t DutyCount(netlist::GateId g) const { return duty_[g]; }

 private:
  static Word3 ApplyForce(Word3 w, std::uint64_t sa0, std::uint64_t sa1) {
    w.known |= sa0 | sa1;
    w.val = (w.val | sa1) & ~sa0;
    return w;
  }

  // Word `wo` of gate g's planes.
  Word3 Load(netlist::GateId g, int wo) const {
    return {val_[g * words_ + wo], known_[g * words_ + wo]};
  }
  void Store(netlist::GateId g, int wo, Word3 w) {
    val_[g * words_ + wo] = w.val;
    known_[g * words_ + wo] = w.known;
  }

  // Fanin read with this gate's pin forces applied (three-valued), word wo.
  Word3 ReadFanin3(netlist::GateId g, std::uint32_t pin, netlist::GateId src,
                   int wo) const;

  // Per-word instruction evaluation for the unit-delay path (the zero-delay
  // settles run the dispatched kernels instead). The PinForced variant
  // routes every fanin read through the pin-force scan.
  Word3 EvalInstr3(std::uint32_t i, int wo) const;
  Word3 EvalInstrPinForced3(std::uint32_t i, int wo) const;

  void SettleUnitDelay(std::uint64_t& substeps, std::uint64_t& evals);

  // Armed kernel mutations (kKernelMutationFailpoints), snapshotted once
  // per Step; all false when no failpoint is armed.
  struct KernelMutations {
    bool skip_last_level = false;
    bool stale_known = false;
    bool frontier_off_by_one = false;
    bool toggle_undercount = false;
  };
  void RefreshKernelMutations();

  void ProbeGuard() const;  // throws guard::Tripped when the probe tripped

  // Queues the combinational readers of `g` for the next unit-delay settle.
  void MarkSourceDirty(netlist::GateId g);
  void DropPendingDirt();

  const netlist::Netlist* nl_;
  std::shared_ptr<const CompiledNetlist> prog_;
  int words_ = 1;  // lane words per gate
  // Settle kernels for (simd::Active(), words_); points at immutable static
  // storage, so copies share it.
  const kern::Table* kernels_ = nullptr;

  // Gate state, lane-word-strided structure-of-arrays planes: gate g's word
  // w at [g * words_ + w]. While the two-valued fast path is active the
  // known planes are saturated (~0) and only val planes are read or written.
  std::vector<std::uint64_t> val_;
  std::vector<std::uint64_t> known_;
  std::vector<std::uint64_t> dff_next_val_;
  std::vector<std::uint64_t> dff_next_known_;
  // Settled values of the previous cycle (toggle counting only).
  std::vector<std::uint64_t> prev_val_;
  std::vector<std::uint64_t> prev_known_;

  // Output forces, dense, lane-word-strided (zero when inactive).
  std::vector<std::uint64_t> out_sa0_;
  std::vector<std::uint64_t> out_sa1_;
  // Pin forces, sparse; per-gate flag avoids the scan on the fast path.
  std::vector<kern::PinForce> pin_forces_;
  std::vector<std::uint8_t> has_pin_force_;
  // Per-gate output-force flag: kernels skip the out_sa plane loads for
  // unforced gates instead of OR-scanning every lane word.
  std::vector<std::uint8_t> has_out_force_;
  // O(1) force lookup, rebuilt lazily at Step when dirty: per flattened
  // fanin slot, the index into pin_forces_ (-1 = unforced); per DFF, the
  // index of its D-pin force. Without these every forced fanin read scanned
  // all registered forces, which made wide parallel fault shards (one force
  // per faulty lane) quadratic in the fault count.
  std::vector<std::int32_t> pin_force_slot_;
  std::vector<std::int32_t> dff_force_idx_;
  bool force_index_dirty_ = false;
  void RebuildForceIndex();
  // Any force registered at all: selects the force-checking kernels.
  bool has_any_force_ = false;

  bool count_toggles_ = false;
  bool unit_delay_ = false;
  bool two_valued_ = false;         // last Step ran the fast path
  bool knowns_saturated_ = false;   // known planes are all-ones everywhere
  bool prev_fully_known_ = false;   // prev_* planes are all-known
  std::vector<std::uint64_t> level_x_;
  std::vector<std::uint64_t> toggles_;
  std::vector<std::uint64_t> duty_;
  std::uint64_t cycles_ = 0;

  // Unit-delay event-driven settle state. `ud_pending_` holds instruction
  // indices whose fanins changed since the last settle (dirty worklist
  // seeds); `ud_flag_` dedups both the pending list and the in-settle
  // frontiers. `ud_all_dirty_` forces a full first sub-step (power-up,
  // force changes, timing-model switch).
  bool ud_all_dirty_ = true;
  std::vector<std::uint32_t> ud_pending_;
  std::vector<std::uint32_t> ud_frontier_;
  std::vector<std::uint32_t> ud_next_;
  std::vector<std::uint8_t> ud_flag_;
  std::vector<std::uint64_t> ud_scratch_val_;
  std::vector<std::uint64_t> ud_scratch_known_;

  const guard::Checker* guard_probe_ = nullptr;
  KernelMutations mut_;

  // Observability counters (cached handles; bumped once per Step, and only
  // when the registry is enabled — see obs/obs.hpp).
  obs::Counter* obs_cycles_ = nullptr;
  obs::Counter* obs_gate_evals_ = nullptr;
  obs::Counter* obs_substeps_ = nullptr;
  obs::Counter* obs_two_valued_ = nullptr;
  obs::Histogram* obs_settle_hist_ = nullptr;  // substeps per unit-delay Step
};

}  // namespace pfd::logicsim
