#include "logicsim/simulator.hpp"

#include <bit>

namespace pfd::logicsim {

using netlist::GateId;
using netlist::GateKind;

Simulator::Simulator(const netlist::Netlist& nl) : nl_(&nl) {
  nl.Validate();
  obs::Registry& reg = obs::Registry::Global();
  obs_cycles_ = &reg.GetCounter("logicsim.cycles");
  obs_gate_evals_ = &reg.GetCounter("logicsim.gate_evals");
  obs_substeps_ = &reg.GetCounter("logicsim.settle_substeps");
  if (reg.enabled()) reg.GetCounter("logicsim.simulators").Add(1);
  const std::size_t n = nl.size();
  value_.assign(n, kAllX);
  dff_next_.assign(n, kAllX);
  prev_value_.assign(n, kAllX);
  out_sa0_.assign(n, 0);
  out_sa1_.assign(n, 0);
  has_pin_force_.assign(n, 0);
  toggles_.assign(n, 0);
  duty_.assign(n, 0);
  Reset();
}

void Simulator::Reset() {
  for (std::size_t g = 0; g < value_.size(); ++g) {
    const GateKind kind = nl_->gate(static_cast<GateId>(g)).kind;
    Word3 w = kAllX;
    if (kind == GateKind::kConst0) w = kAllZero;
    if (kind == GateKind::kConst1) w = kAllOne;
    value_[g] = w;
    dff_next_[g] = kAllX;
    prev_value_[g] = w;
    toggles_[g] = 0;
    duty_[g] = 0;
  }
  cycles_ = 0;
}

void Simulator::SetInput(GateId input, Word3 w) {
  PFD_CHECK_MSG(nl_->gate(input).kind == GateKind::kInput,
                "SetInput on a non-input gate");
  PFD_CHECK_MSG(IsCanonical(w), "non-canonical input word");
  value_[input] = w;
}

Word3 Simulator::ReadFanin(GateId g, std::uint32_t pin, GateId src) const {
  Word3 w = value_[src];
  if (has_pin_force_[g]) {
    for (const PinForce& pf : pin_forces_) {
      if (pf.gate == g && pf.pin == pin) {
        w = ApplyForce(w, pf.sa0, pf.sa1);
      }
    }
  }
  return w;
}

Word3 Simulator::EvalGate(GateId g) const {
  const auto fanins = nl_->Fanins(g);
  const GateKind kind = nl_->gate(g).kind;
  switch (kind) {
    case GateKind::kBuf:
      return ReadFanin(g, 0, fanins[0]);
    case GateKind::kNot:
      return Not3(ReadFanin(g, 0, fanins[0]));
    case GateKind::kAnd:
    case GateKind::kNand: {
      Word3 w = ReadFanin(g, 0, fanins[0]);
      for (std::uint32_t i = 1; i < fanins.size(); ++i) {
        w = And3(w, ReadFanin(g, i, fanins[i]));
      }
      return kind == GateKind::kNand ? Not3(w) : w;
    }
    case GateKind::kOr:
    case GateKind::kNor: {
      Word3 w = ReadFanin(g, 0, fanins[0]);
      for (std::uint32_t i = 1; i < fanins.size(); ++i) {
        w = Or3(w, ReadFanin(g, i, fanins[i]));
      }
      return kind == GateKind::kNor ? Not3(w) : w;
    }
    case GateKind::kXor:
      return Xor3(ReadFanin(g, 0, fanins[0]), ReadFanin(g, 1, fanins[1]));
    case GateKind::kXnor:
      return Xnor3(ReadFanin(g, 0, fanins[0]), ReadFanin(g, 1, fanins[1]));
    case GateKind::kMux2:
      return Mux3(ReadFanin(g, 0, fanins[0]), ReadFanin(g, 1, fanins[1]),
                  ReadFanin(g, 2, fanins[2]));
    default:
      PFD_CHECK_MSG(false, "EvalGate on non-combinational gate");
      return kAllX;
  }
}

void Simulator::Step() {
  // 1. Clock edge: DFFs take on the value captured at the end of the
  //    previous cycle. (First cycle: they stay at their power-up X.)
  if (cycles_ > 0) {
    for (GateId d : nl_->DffIds()) {
      Word3 w = dff_next_[d];
      const std::uint64_t sa0 = out_sa0_[d];
      const std::uint64_t sa1 = out_sa1_[d];
      if ((sa0 | sa1) != 0) w = ApplyForce(w, sa0, sa1);
      value_[d] = w;
    }
  } else {
    for (GateId d : nl_->DffIds()) {
      const std::uint64_t sa0 = out_sa0_[d];
      const std::uint64_t sa1 = out_sa1_[d];
      if ((sa0 | sa1) != 0) value_[d] = ApplyForce(value_[d], sa0, sa1);
    }
  }

  // 2. Inputs may carry output forces too (a stuck primary input).
  for (GateId in : nl_->InputIds()) {
    const std::uint64_t sa0 = out_sa0_[in];
    const std::uint64_t sa1 = out_sa1_[in];
    if ((sa0 | sa1) != 0) value_[in] = ApplyForce(value_[in], sa0, sa1);
  }

  // 3. Combinational settle.
  std::uint64_t settle_substeps = 0;  // unit-delay only
  if (!unit_delay_) {
    // Zero-delay: settle once in topological order.
    for (GateId g : nl_->CombinationalOrder()) {
      Word3 w = EvalGate(g);
      const std::uint64_t sa0 = out_sa0_[g];
      const std::uint64_t sa1 = out_sa1_[g];
      if ((sa0 | sa1) != 0) w = ApplyForce(w, sa0, sa1);
      value_[g] = w;
    }
  } else {
    // Unit-delay: each sub-step evaluates every gate from the previous
    // sub-step's values, counting every intermediate (glitch) transition.
    // Acyclic logic stabilises within depth+1 sub-steps.
    sub_next_ = value_;
    const auto& order = nl_->CombinationalOrder();
    for (std::size_t substep = 0; substep <= order.size(); ++substep) {
      ++settle_substeps;
      bool changed = false;
      for (GateId g : order) {
        Word3 w = EvalGate(g);  // reads value_ = previous sub-step
        const std::uint64_t sa0 = out_sa0_[g];
        const std::uint64_t sa1 = out_sa1_[g];
        if ((sa0 | sa1) != 0) w = ApplyForce(w, sa0, sa1);
        if (!(w == value_[g])) changed = true;
        sub_next_[g] = w;
      }
      if (!changed) break;
      if (count_toggles_) {
        for (GateId g : order) {
          const Word3 prev = value_[g];
          const Word3 cur = sub_next_[g];
          toggles_[g] += static_cast<std::uint64_t>(
              std::popcount((prev.val ^ cur.val) & prev.known & cur.known));
        }
      }
      std::swap(value_, sub_next_);
    }
  }

  // 4. Switching activity: one potential transition per net per cycle in
  //    the zero-delay model; the unit-delay path already counted
  //    combinational (glitch) transitions per sub-step, so here it only
  //    accounts the sequential/input nets and the duty cycle.
  if (count_toggles_) {
    for (std::size_t g = 0; g < value_.size(); ++g) {
      const Word3 cur = value_[g];
      if (!unit_delay_ ||
          !netlist::IsCombinational(nl_->gate(static_cast<GateId>(g)).kind)) {
        const Word3 prev = prev_value_[g];
        const std::uint64_t both_known = prev.known & cur.known;
        toggles_[g] += static_cast<std::uint64_t>(
            std::popcount((prev.val ^ cur.val) & both_known));
      }
      duty_[g] += static_cast<std::uint64_t>(
          std::popcount(cur.val & cur.known));
    }
    prev_value_ = value_;
  }

  // 5. Capture next DFF state from the settled D pins (with pin forces).
  for (GateId d : nl_->DffIds()) {
    dff_next_[d] = ReadFanin(d, 0, nl_->Fanins(d)[0]);
  }

  // Counter updates happen once per Step (64 machine-cycles), so the guard
  // is a single relaxed load per ~N gate evaluations.
  if (obs::Enabled()) {
    const std::uint64_t order_size = nl_->CombinationalOrder().size();
    obs_cycles_->Add(1);
    obs_gate_evals_->Add(unit_delay_ ? settle_substeps * order_size
                                     : order_size);
    if (unit_delay_) obs_substeps_->Add(settle_substeps);
  }

  ++cycles_;
}

void Simulator::ForceOutput(GateId g, Trit value, std::uint64_t lane_mask) {
  PFD_CHECK_MSG(value != Trit::kX, "cannot force X");
  if (value == Trit::kZero) {
    out_sa0_[g] |= lane_mask;
  } else {
    out_sa1_[g] |= lane_mask;
  }
}

void Simulator::ForcePin(GateId g, std::uint32_t pin, Trit value,
                         std::uint64_t lane_mask) {
  PFD_CHECK_MSG(value != Trit::kX, "cannot force X");
  PFD_CHECK_MSG(pin < nl_->Fanins(g).size(), "pin out of range");
  for (PinForce& pf : pin_forces_) {
    if (pf.gate == g && pf.pin == pin) {
      (value == Trit::kZero ? pf.sa0 : pf.sa1) |= lane_mask;
      return;
    }
  }
  PinForce pf{g, pin, 0, 0};
  (value == Trit::kZero ? pf.sa0 : pf.sa1) = lane_mask;
  pin_forces_.push_back(pf);
  has_pin_force_[g] = 1;
}

void Simulator::ClearForces() {
  std::fill(out_sa0_.begin(), out_sa0_.end(), 0);
  std::fill(out_sa1_.begin(), out_sa1_.end(), 0);
  std::fill(has_pin_force_.begin(), has_pin_force_.end(), 0);
  pin_forces_.clear();
}

void Simulator::EnableToggleCounting(bool enable) {
  // Sync the snapshot so enabling mid-run does not count a bogus transition
  // from stale values.
  if (enable && !count_toggles_) prev_value_ = value_;
  count_toggles_ = enable;
}

void Simulator::ResetToggleCounts() {
  std::fill(toggles_.begin(), toggles_.end(), 0);
  std::fill(duty_.begin(), duty_.end(), 0);
}

}  // namespace pfd::logicsim
