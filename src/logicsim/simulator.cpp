#include "logicsim/simulator.hpp"

#include <algorithm>
#include <bit>
#include <utility>

#include "guard/guard.hpp"
#include "obs/flight.hpp"

namespace pfd::logicsim {

using netlist::GateId;
using netlist::GateKind;

Simulator::Simulator(const netlist::Netlist& nl)
    : Simulator(nl, CompiledNetlist::Compile(nl)) {}

Simulator::Simulator(const netlist::Netlist& nl,
                     std::shared_ptr<const CompiledNetlist> program)
    : nl_(&nl), prog_(std::move(program)) {
  PFD_CHECK_MSG(prog_ != nullptr, "null compiled program");
  PFD_CHECK_MSG(prog_->structural_hash() == nl.StructuralHash(),
                "compiled program does not match the netlist");
  obs::Registry& reg = obs::Registry::Global();
  obs_cycles_ = &reg.GetCounter("logicsim.cycles");
  obs_gate_evals_ = &reg.GetCounter("logicsim.gate_evals");
  obs_substeps_ = &reg.GetCounter("logicsim.settle_substeps");
  obs_two_valued_ = &reg.GetCounter("logicsim.two_valued_steps");
  obs_settle_hist_ = &reg.GetHistogram("logicsim.settle_substeps_per_step");
  if (reg.enabled()) reg.GetCounter("logicsim.simulators").Add(1);
  const std::size_t n = nl.size();
  val_.assign(n, 0);
  known_.assign(n, 0);
  dff_next_val_.assign(n, 0);
  dff_next_known_.assign(n, 0);
  prev_val_.assign(n, 0);
  prev_known_.assign(n, 0);
  out_sa0_.assign(n, 0);
  out_sa1_.assign(n, 0);
  has_pin_force_.assign(n, 0);
  level_x_.assign(prog_->levels().size(), 0);
  toggles_.assign(n, 0);
  duty_.assign(n, 0);
  ud_flag_.assign(prog_->num_instructions(), 0);
  Reset();
}

void Simulator::Reset() {
  const auto& kinds = prog_->kind();
  for (std::size_t g = 0; g < val_.size(); ++g) {
    Word3 w = kAllX;
    if (kinds[g] == GateKind::kConst0) w = kAllZero;
    if (kinds[g] == GateKind::kConst1) w = kAllOne;
    val_[g] = w.val;
    known_[g] = w.known;
    dff_next_val_[g] = 0;
    dff_next_known_[g] = 0;
    prev_val_[g] = w.val;
    prev_known_[g] = w.known;
    toggles_[g] = 0;
    duty_[g] = 0;
  }
  std::fill(level_x_.begin(), level_x_.end(), 0);
  cycles_ = 0;
  two_valued_ = false;
  knowns_saturated_ = false;
  prev_fully_known_ = false;
  ud_all_dirty_ = true;
  DropPendingDirt();
}

void Simulator::MarkSourceDirty(GateId g) {
  if (ud_all_dirty_) return;
  const auto& begin = prog_->fanout_begin();
  const auto& instrs = prog_->fanout_instrs();
  for (std::uint32_t k = begin[g]; k < begin[g + 1]; ++k) {
    const std::uint32_t i = instrs[k];
    if (!ud_flag_[i]) {
      ud_flag_[i] = 1;
      ud_pending_.push_back(i);
    }
  }
}

void Simulator::DropPendingDirt() {
  for (std::uint32_t i : ud_pending_) ud_flag_[i] = 0;
  ud_pending_.clear();
}

void Simulator::SetInput(GateId input, Word3 w) {
  PFD_CHECK_MSG(prog_->kind()[input] == GateKind::kInput,
                "SetInput on a non-input gate");
  PFD_CHECK_MSG(IsCanonical(w), "non-canonical input word");
  if (unit_delay_ && (val_[input] != w.val || known_[input] != w.known)) {
    MarkSourceDirty(input);
  }
  val_[input] = w.val;
  known_[input] = w.known;
}

Word3 Simulator::ReadFanin3(GateId g, std::uint32_t pin, GateId src) const {
  Word3 w = Load(src);
  for (const PinForce& pf : pin_forces_) {
    if (pf.gate == g && pf.pin == pin) w = ApplyForce(w, pf.sa0, pf.sa1);
  }
  return w;
}

std::uint64_t Simulator::ReadFanin2(GateId g, std::uint32_t pin,
                                    GateId src) const {
  std::uint64_t v = val_[src];
  for (const PinForce& pf : pin_forces_) {
    if (pf.gate == g && pf.pin == pin) v = (v | pf.sa1) & ~pf.sa0;
  }
  return v;
}

Word3 Simulator::EvalInstr3(std::uint32_t i) const {
  const CompiledNetlist& p = *prog_;
  const GateId* f = p.fanins().data() + p.fanin_begin()[i];
  switch (p.op()[i]) {
    case Op::kBuf: return Load(f[0]);
    case Op::kNot: return Not3(Load(f[0]));
    case Op::kAnd2: return And3(Load(f[0]), Load(f[1]));
    case Op::kOr2: return Or3(Load(f[0]), Load(f[1]));
    case Op::kNand2: return Not3(And3(Load(f[0]), Load(f[1])));
    case Op::kNor2: return Not3(Or3(Load(f[0]), Load(f[1])));
    case Op::kXor2: return Xor3(Load(f[0]), Load(f[1]));
    case Op::kXnor2: return Xnor3(Load(f[0]), Load(f[1]));
    case Op::kMux2: return Mux3(Load(f[0]), Load(f[1]), Load(f[2]));
    case Op::kAndN:
    case Op::kNandN: {
      Word3 w = Load(f[0]);
      const std::uint32_t count = p.fanin_count()[i];
      for (std::uint32_t k = 1; k < count; ++k) w = And3(w, Load(f[k]));
      return p.op()[i] == Op::kNandN ? Not3(w) : w;
    }
    case Op::kOrN:
    case Op::kNorN: {
      Word3 w = Load(f[0]);
      const std::uint32_t count = p.fanin_count()[i];
      for (std::uint32_t k = 1; k < count; ++k) w = Or3(w, Load(f[k]));
      return p.op()[i] == Op::kNorN ? Not3(w) : w;
    }
  }
  return kAllX;
}

Word3 Simulator::EvalInstrPinForced3(std::uint32_t i) const {
  const CompiledNetlist& p = *prog_;
  const GateId g = p.out()[i];
  const GateId* f = p.fanins().data() + p.fanin_begin()[i];
  switch (p.op()[i]) {
    case Op::kBuf: return ReadFanin3(g, 0, f[0]);
    case Op::kNot: return Not3(ReadFanin3(g, 0, f[0]));
    case Op::kAnd2:
      return And3(ReadFanin3(g, 0, f[0]), ReadFanin3(g, 1, f[1]));
    case Op::kOr2: return Or3(ReadFanin3(g, 0, f[0]), ReadFanin3(g, 1, f[1]));
    case Op::kNand2:
      return Not3(And3(ReadFanin3(g, 0, f[0]), ReadFanin3(g, 1, f[1])));
    case Op::kNor2:
      return Not3(Or3(ReadFanin3(g, 0, f[0]), ReadFanin3(g, 1, f[1])));
    case Op::kXor2:
      return Xor3(ReadFanin3(g, 0, f[0]), ReadFanin3(g, 1, f[1]));
    case Op::kXnor2:
      return Xnor3(ReadFanin3(g, 0, f[0]), ReadFanin3(g, 1, f[1]));
    case Op::kMux2:
      return Mux3(ReadFanin3(g, 0, f[0]), ReadFanin3(g, 1, f[1]),
                  ReadFanin3(g, 2, f[2]));
    case Op::kAndN:
    case Op::kNandN: {
      Word3 w = ReadFanin3(g, 0, f[0]);
      const std::uint32_t count = p.fanin_count()[i];
      for (std::uint32_t k = 1; k < count; ++k) {
        w = And3(w, ReadFanin3(g, k, f[k]));
      }
      return p.op()[i] == Op::kNandN ? Not3(w) : w;
    }
    case Op::kOrN:
    case Op::kNorN: {
      Word3 w = ReadFanin3(g, 0, f[0]);
      const std::uint32_t count = p.fanin_count()[i];
      for (std::uint32_t k = 1; k < count; ++k) {
        w = Or3(w, ReadFanin3(g, k, f[k]));
      }
      return p.op()[i] == Op::kNorN ? Not3(w) : w;
    }
  }
  return kAllX;
}

std::uint64_t Simulator::EvalInstr2(std::uint32_t i) const {
  const CompiledNetlist& p = *prog_;
  const GateId* f = p.fanins().data() + p.fanin_begin()[i];
  const std::uint64_t* v = val_.data();
  switch (p.op()[i]) {
    case Op::kBuf: return v[f[0]];
    case Op::kNot: return ~v[f[0]];
    case Op::kAnd2: return v[f[0]] & v[f[1]];
    case Op::kOr2: return v[f[0]] | v[f[1]];
    case Op::kNand2: return ~(v[f[0]] & v[f[1]]);
    case Op::kNor2: return ~(v[f[0]] | v[f[1]]);
    case Op::kXor2: return v[f[0]] ^ v[f[1]];
    case Op::kXnor2: return ~(v[f[0]] ^ v[f[1]]);
    case Op::kMux2: {
      const std::uint64_t sel = v[f[0]];
      return (v[f[1]] & ~sel) | (v[f[2]] & sel);
    }
    case Op::kAndN:
    case Op::kNandN: {
      std::uint64_t acc = v[f[0]];
      const std::uint32_t count = p.fanin_count()[i];
      for (std::uint32_t k = 1; k < count; ++k) acc &= v[f[k]];
      return p.op()[i] == Op::kNandN ? ~acc : acc;
    }
    case Op::kOrN:
    case Op::kNorN: {
      std::uint64_t acc = v[f[0]];
      const std::uint32_t count = p.fanin_count()[i];
      for (std::uint32_t k = 1; k < count; ++k) acc |= v[f[k]];
      return p.op()[i] == Op::kNorN ? ~acc : acc;
    }
  }
  return 0;
}

std::uint64_t Simulator::EvalInstrPinForced2(std::uint32_t i) const {
  const CompiledNetlist& p = *prog_;
  const GateId g = p.out()[i];
  const GateId* f = p.fanins().data() + p.fanin_begin()[i];
  switch (p.op()[i]) {
    case Op::kBuf: return ReadFanin2(g, 0, f[0]);
    case Op::kNot: return ~ReadFanin2(g, 0, f[0]);
    case Op::kAnd2: return ReadFanin2(g, 0, f[0]) & ReadFanin2(g, 1, f[1]);
    case Op::kOr2: return ReadFanin2(g, 0, f[0]) | ReadFanin2(g, 1, f[1]);
    case Op::kNand2:
      return ~(ReadFanin2(g, 0, f[0]) & ReadFanin2(g, 1, f[1]));
    case Op::kNor2:
      return ~(ReadFanin2(g, 0, f[0]) | ReadFanin2(g, 1, f[1]));
    case Op::kXor2: return ReadFanin2(g, 0, f[0]) ^ ReadFanin2(g, 1, f[1]);
    case Op::kXnor2:
      return ~(ReadFanin2(g, 0, f[0]) ^ ReadFanin2(g, 1, f[1]));
    case Op::kMux2: {
      const std::uint64_t sel = ReadFanin2(g, 0, f[0]);
      return (ReadFanin2(g, 1, f[1]) & ~sel) | (ReadFanin2(g, 2, f[2]) & sel);
    }
    case Op::kAndN:
    case Op::kNandN: {
      std::uint64_t acc = ReadFanin2(g, 0, f[0]);
      const std::uint32_t count = p.fanin_count()[i];
      for (std::uint32_t k = 1; k < count; ++k) acc &= ReadFanin2(g, k, f[k]);
      return p.op()[i] == Op::kNandN ? ~acc : acc;
    }
    case Op::kOrN:
    case Op::kNorN: {
      std::uint64_t acc = ReadFanin2(g, 0, f[0]);
      const std::uint32_t count = p.fanin_count()[i];
      for (std::uint32_t k = 1; k < count; ++k) acc |= ReadFanin2(g, k, f[k]);
      return p.op()[i] == Op::kNorN ? ~acc : acc;
    }
  }
  return 0;
}

void Simulator::ProbeGuard() const {
  if (guard_probe_ != nullptr && guard_probe_->tripped()) {
    throw guard::Tripped{guard_probe_->status()};
  }
}

void Simulator::RefreshKernelMutations() {
  if (!guard::AnyFailpointsArmed()) {
    mut_ = {};
    return;
  }
  mut_.skip_last_level = guard::FailpointFlagged("xcheck.mutate.skip_level");
  mut_.stale_known = guard::FailpointFlagged("xcheck.mutate.stale_known");
  mut_.frontier_off_by_one =
      guard::FailpointFlagged("xcheck.mutate.frontier_off_by_one");
  mut_.toggle_undercount =
      guard::FailpointFlagged("xcheck.mutate.toggle_undercount");
}

template <bool kForces>
void Simulator::SettleThreeValued() {
  const CompiledNetlist& p = *prog_;
  const auto& levels = p.levels();
  const GateId* out = p.out().data();
  for (std::size_t li = 0; li < levels.size(); ++li) {
    std::uint64_t xmask = 0;
    const std::uint32_t end = levels[li].end;
    for (std::uint32_t i = levels[li].begin; i < end; ++i) {
      const GateId g = out[i];
      Word3 w;
      if (kForces && has_pin_force_[g]) {
        w = EvalInstrPinForced3(i);
      } else {
        w = EvalInstr3(i);
      }
      if constexpr (kForces) {
        const std::uint64_t sa0 = out_sa0_[g];
        const std::uint64_t sa1 = out_sa1_[g];
        if ((sa0 | sa1) != 0) w = ApplyForce(w, sa0, sa1);
      }
      val_[g] = w.val;
      known_[g] = w.known;
      xmask |= ~w.known;
    }
    level_x_[li] = xmask;
    ProbeGuard();
  }
}

template <bool kForces>
void Simulator::SettleTwoValued() {
  const CompiledNetlist& p = *prog_;
  const auto& levels = p.levels();
  const GateId* out = p.out().data();
  const std::size_t num_levels =
      mut_.skip_last_level && !levels.empty() ? levels.size() - 1
                                              : levels.size();
  for (std::size_t li = 0; li < num_levels; ++li) {
    const std::uint32_t end = levels[li].end;
    for (std::uint32_t i = levels[li].begin; i < end; ++i) {
      const GateId g = out[i];
      std::uint64_t v;
      if (kForces && has_pin_force_[g]) {
        v = EvalInstrPinForced2(i);
      } else {
        v = EvalInstr2(i);
      }
      if constexpr (kForces) {
        v = (v | out_sa1_[g]) & ~out_sa0_[g];
      }
      val_[g] = v;
    }
    ProbeGuard();
  }
}

void Simulator::SettleUnitDelay(std::uint64_t& substeps,
                                std::uint64_t& evals) {
  const CompiledNetlist& p = *prog_;
  const GateId* out = p.out().data();
  const auto& fanout_begin = p.fanout_begin();
  const auto& fanout_instrs = p.fanout_instrs();

  ud_frontier_.clear();
  if (ud_all_dirty_) {
    DropPendingDirt();
    ud_frontier_.resize(p.num_instructions());
    for (std::uint32_t i = 0; i < ud_frontier_.size(); ++i) {
      ud_frontier_[i] = i;
    }
    ud_all_dirty_ = false;
  } else {
    ud_frontier_.swap(ud_pending_);
    for (std::uint32_t i : ud_frontier_) ud_flag_[i] = 0;
  }

  // Acyclic logic stabilises within depth+1 sub-steps; the bound only
  // protects against structural corruption.
  const std::size_t bound = p.num_instructions() + 1;
  std::size_t rounds = 0;
  while (!ud_frontier_.empty()) {
    PFD_CHECK_MSG(rounds++ <= bound, "unit-delay settle did not stabilise");
    if (mut_.frontier_off_by_one && ud_frontier_.size() > 1) {
      ud_frontier_.pop_back();  // planted bug: one instruction never settles
    }
    ++substeps;
    evals += ud_frontier_.size();

    // Jacobi sub-step: evaluate the whole frontier against the previous
    // sub-step's planes before committing anything, so evaluation order
    // within a sub-step cannot matter.
    ud_scratch_val_.resize(ud_frontier_.size());
    ud_scratch_known_.resize(ud_frontier_.size());
    for (std::size_t k = 0; k < ud_frontier_.size(); ++k) {
      const std::uint32_t i = ud_frontier_[k];
      const GateId g = out[i];
      Word3 w;
      if (has_any_force_ && has_pin_force_[g]) {
        w = EvalInstrPinForced3(i);
      } else {
        w = EvalInstr3(i);
      }
      if (has_any_force_) {
        const std::uint64_t sa0 = out_sa0_[g];
        const std::uint64_t sa1 = out_sa1_[g];
        if ((sa0 | sa1) != 0) w = ApplyForce(w, sa0, sa1);
      }
      ud_scratch_val_[k] = w.val;
      ud_scratch_known_[k] = w.known;
    }

    ud_next_.clear();
    for (std::size_t k = 0; k < ud_frontier_.size(); ++k) {
      const std::uint32_t i = ud_frontier_[k];
      const GateId g = out[i];
      const std::uint64_t nv = ud_scratch_val_[k];
      const std::uint64_t nk = ud_scratch_known_[k];
      if (nv == val_[g] && nk == known_[g]) continue;
      if (count_toggles_) {
        toggles_[g] += static_cast<std::uint64_t>(
            std::popcount((val_[g] ^ nv) & known_[g] & nk));
      }
      val_[g] = nv;
      known_[g] = nk;
      for (std::uint32_t fk = fanout_begin[g]; fk < fanout_begin[g + 1];
           ++fk) {
        const std::uint32_t j = fanout_instrs[fk];
        if (!ud_flag_[j]) {
          ud_flag_[j] = 1;
          ud_next_.push_back(j);
        }
      }
    }
    ud_frontier_.swap(ud_next_);
    for (std::uint32_t i : ud_frontier_) ud_flag_[i] = 0;
    ProbeGuard();
  }
}

void Simulator::Step() {
  RefreshKernelMutations();
  const CompiledNetlist& p = *prog_;
  const auto& dff_ids = p.dff_ids();
  const auto& dff_d = p.dff_d();

  // 1. Clock edge: DFFs take on the value captured at the end of the
  //    previous cycle. (First cycle: they stay at their power-up X.)
  if (cycles_ > 0) {
    for (GateId d : dff_ids) {
      std::uint64_t v = dff_next_val_[d];
      std::uint64_t kn = dff_next_known_[d];
      if (has_any_force_) {
        const std::uint64_t sa0 = out_sa0_[d];
        const std::uint64_t sa1 = out_sa1_[d];
        if ((sa0 | sa1) != 0) {
          kn |= sa0 | sa1;
          v = (v | sa1) & ~sa0;
        }
      }
      if (unit_delay_ && (v != val_[d] || kn != known_[d])) {
        MarkSourceDirty(d);
      }
      val_[d] = v;
      known_[d] = kn;
    }
  } else if (has_any_force_) {
    for (GateId d : dff_ids) {
      const std::uint64_t sa0 = out_sa0_[d];
      const std::uint64_t sa1 = out_sa1_[d];
      if ((sa0 | sa1) != 0) {
        Store(d, ApplyForce(Load(d), sa0, sa1));
      }
    }
  }

  // 2. Inputs may carry output forces too (a stuck primary input).
  if (has_any_force_) {
    for (GateId in : p.input_ids()) {
      const std::uint64_t sa0 = out_sa0_[in];
      const std::uint64_t sa1 = out_sa1_[in];
      if ((sa0 | sa1) != 0) {
        const Word3 w = ApplyForce(Load(in), sa0, sa1);
        if (unit_delay_ && (w.val != val_[in] || w.known != known_[in])) {
          MarkSourceDirty(in);
        }
        Store(in, w);
      }
    }
  }

  // 3. Pick the settle mode. The fast path is exact: when every source is
  //    fully known, every Word3 operator (and every force) produces fully
  //    known outputs, so the known planes would all saturate anyway — we
  //    saturate them once on entry and stop maintaining them.
  bool two_valued = false;
  if (!unit_delay_) {
    std::uint64_t unknown = 0;
    for (GateId s : p.source_ids()) unknown |= ~known_[s];
    two_valued = unknown == 0;
    if (two_valued && !knowns_saturated_) {
      if (!mut_.stale_known) {  // planted bug: keep stale planes/watermark
        std::fill(known_.begin(), known_.end(), ~0ULL);
        std::fill(level_x_.begin(), level_x_.end(), 0);
      }
      knowns_saturated_ = true;
    }
    if (!two_valued) knowns_saturated_ = false;
  } else {
    knowns_saturated_ = false;
  }

  // 4. Combinational settle.
  std::uint64_t settle_substeps = 0;  // unit-delay only
  std::uint64_t gate_evals = 0;
  if (!unit_delay_) {
    if (two_valued) {
      has_any_force_ ? SettleTwoValued<true>() : SettleTwoValued<false>();
    } else {
      has_any_force_ ? SettleThreeValued<true>() : SettleThreeValued<false>();
    }
    gate_evals = p.num_instructions();
    // Everything is settled, so dirt queued for the unit-delay worklist
    // (input edits, DFF commits) is consumed.
    DropPendingDirt();
    ud_all_dirty_ = false;
  } else {
    SettleUnitDelay(settle_substeps, gate_evals);
  }
  // Falling off the two-valued fast path is a (rare) cost cliff worth a
  // post-mortem timeline entry: an X crept into a source mid-run.
  if (two_valued_ && !two_valued && obs::FlightEnabled()) {
    obs::RecordFlight(obs::FlightKind::kFallback3V, "logicsim.step",
                      "cycle " + std::to_string(cycles_) +
                          ": left the two-valued fast path");
  }
  two_valued_ = two_valued;

  // 5. Switching activity: one potential transition per net per cycle in
  //    the zero-delay model; the unit-delay path already counted
  //    combinational (glitch) transitions per sub-step, so here it only
  //    accounts the sequential/input nets and the duty cycle.
  if (count_toggles_) {
    // Planted bug (xcheck.mutate.toggle_undercount): the last gate's
    // switching activity is silently dropped.
    const std::size_t n =
        mut_.toggle_undercount && !val_.empty() ? val_.size() - 1 : val_.size();
    if (two_valued && prev_fully_known_) {
      // Steady-state fast path: every lane of every net is known, in this
      // cycle and the previous one.
      for (std::size_t g = 0; g < n; ++g) {
        toggles_[g] +=
            static_cast<std::uint64_t>(std::popcount(prev_val_[g] ^ val_[g]));
        duty_[g] += static_cast<std::uint64_t>(std::popcount(val_[g]));
      }
      prev_val_ = val_;
    } else {
      const auto& is_comb = p.is_comb();
      for (std::size_t g = 0; g < n; ++g) {
        const std::uint64_t cur_v = val_[g];
        const std::uint64_t cur_k = known_[g];
        if (!unit_delay_ || !is_comb[g]) {
          toggles_[g] += static_cast<std::uint64_t>(std::popcount(
              (prev_val_[g] ^ cur_v) & prev_known_[g] & cur_k));
        }
        duty_[g] +=
            static_cast<std::uint64_t>(std::popcount(cur_v & cur_k));
      }
      prev_val_ = val_;
      prev_known_ = known_;
    }
    prev_fully_known_ = two_valued;
  }

  // 6. Capture next DFF state from the settled D pins (with pin forces).
  for (std::size_t k = 0; k < dff_ids.size(); ++k) {
    const GateId d = dff_ids[k];
    Word3 w = Load(dff_d[k]);
    if (has_pin_force_[d]) {
      for (const PinForce& pf : pin_forces_) {
        if (pf.gate == d && pf.pin == 0) w = ApplyForce(w, pf.sa0, pf.sa1);
      }
    }
    dff_next_val_[d] = w.val;
    dff_next_known_[d] = w.known;
  }

  // Counter updates happen once per Step (64 machine-cycles), so the guard
  // is a single relaxed load per ~N gate evaluations.
  if (obs::Enabled()) {
    obs_cycles_->Add(1);
    obs_gate_evals_->Add(gate_evals);
    if (unit_delay_) {
      obs_substeps_->Add(settle_substeps);
      obs_settle_hist_->Record(settle_substeps);
    }
    if (two_valued) obs_two_valued_->Add(1);
  }

  ++cycles_;
}

void Simulator::PackLane0(std::uint64_t* val_bits,
                          std::uint64_t* known_bits) const {
  const std::size_t n = val_.size();
  const std::size_t words = (n + 63) / 64;
  std::fill(val_bits, val_bits + words, 0);
  std::fill(known_bits, known_bits + words, 0);
  for (std::size_t g = 0; g < n; ++g) {
    val_bits[g >> 6] |= (val_[g] & 1ULL) << (g & 63);
    known_bits[g >> 6] |= (known_[g] & 1ULL) << (g & 63);
  }
}

void Simulator::ForceOutput(GateId g, Trit value, std::uint64_t lane_mask) {
  PFD_CHECK_MSG(value != Trit::kX, "cannot force X");
  if (value == Trit::kZero) {
    out_sa0_[g] |= lane_mask;
  } else {
    out_sa1_[g] |= lane_mask;
  }
  has_any_force_ = true;
  ud_all_dirty_ = true;
}

void Simulator::ForcePin(GateId g, std::uint32_t pin, Trit value,
                         std::uint64_t lane_mask) {
  PFD_CHECK_MSG(value != Trit::kX, "cannot force X");
  PFD_CHECK_MSG(pin < nl_->Fanins(g).size(), "pin out of range");
  has_any_force_ = true;
  ud_all_dirty_ = true;
  for (PinForce& pf : pin_forces_) {
    if (pf.gate == g && pf.pin == pin) {
      (value == Trit::kZero ? pf.sa0 : pf.sa1) |= lane_mask;
      return;
    }
  }
  PinForce pf{g, pin, 0, 0};
  (value == Trit::kZero ? pf.sa0 : pf.sa1) = lane_mask;
  pin_forces_.push_back(pf);
  has_pin_force_[g] = 1;
}

void Simulator::ClearForces() {
  std::fill(out_sa0_.begin(), out_sa0_.end(), 0);
  std::fill(out_sa1_.begin(), out_sa1_.end(), 0);
  std::fill(has_pin_force_.begin(), has_pin_force_.end(), 0);
  pin_forces_.clear();
  has_any_force_ = false;
  ud_all_dirty_ = true;
}

void Simulator::EnableToggleCounting(bool enable) {
  // Sync the snapshot so enabling mid-run does not count a bogus transition
  // from stale values.
  if (enable && !count_toggles_) {
    prev_val_ = val_;
    prev_known_ = known_;
    prev_fully_known_ = false;
  }
  count_toggles_ = enable;
}

void Simulator::ResetToggleCounts() {
  std::fill(toggles_.begin(), toggles_.end(), 0);
  std::fill(duty_.begin(), duty_.end(), 0);
}

}  // namespace pfd::logicsim
