#include "logicsim/simulator.hpp"

#include <algorithm>
#include <bit>
#include <utility>

#include "base/simd.hpp"
#include "guard/guard.hpp"
#include "obs/flight.hpp"

namespace pfd::logicsim {

using netlist::GateId;
using netlist::GateKind;

Simulator::Simulator(const netlist::Netlist& nl, int lane_words)
    : Simulator(nl, CompiledNetlist::Compile(nl), lane_words) {}

Simulator::Simulator(const netlist::Netlist& nl,
                     std::shared_ptr<const CompiledNetlist> program,
                     int lane_words)
    : nl_(&nl), prog_(std::move(program)), words_(lane_words) {
  PFD_CHECK_MSG(prog_ != nullptr, "null compiled program");
  PFD_CHECK_MSG(prog_->structural_hash() == nl.StructuralHash(),
                "compiled program does not match the netlist");
  PFD_CHECK_MSG(words_ == 1 || words_ == 4 || words_ == 8,
                "lane words must be 1, 4 or 8");
  kernels_ = &kern::GetTable(simd::Active(), words_);
  obs::Registry& reg = obs::Registry::Global();
  obs_cycles_ = &reg.GetCounter("logicsim.cycles");
  obs_gate_evals_ = &reg.GetCounter("logicsim.gate_evals");
  obs_substeps_ = &reg.GetCounter("logicsim.settle_substeps");
  obs_two_valued_ = &reg.GetCounter("logicsim.two_valued_steps");
  obs_settle_hist_ = &reg.GetHistogram("logicsim.settle_substeps_per_step");
  if (reg.enabled()) reg.GetCounter("logicsim.simulators").Add(1);
  const std::size_t n = nl.size();
  const std::size_t nw = n * static_cast<std::size_t>(words_);
  val_.assign(nw, 0);
  known_.assign(nw, 0);
  dff_next_val_.assign(nw, 0);
  dff_next_known_.assign(nw, 0);
  prev_val_.assign(nw, 0);
  prev_known_.assign(nw, 0);
  out_sa0_.assign(nw, 0);
  out_sa1_.assign(nw, 0);
  has_pin_force_.assign(n, 0);
  has_out_force_.assign(n, 0);
  level_x_.assign(prog_->levels().size(), 0);
  toggles_.assign(n, 0);
  duty_.assign(n, 0);
  ud_flag_.assign(prog_->num_instructions(), 0);
  Reset();
}

void Simulator::Reset() {
  const auto& kinds = prog_->kind();
  const std::size_t n = nl_->size();
  for (std::size_t g = 0; g < n; ++g) {
    Word3 w = kAllX;
    if (kinds[g] == GateKind::kConst0) w = kAllZero;
    if (kinds[g] == GateKind::kConst1) w = kAllOne;
    for (int j = 0; j < words_; ++j) {
      const std::size_t idx = g * words_ + j;
      val_[idx] = w.val;
      known_[idx] = w.known;
      dff_next_val_[idx] = 0;
      dff_next_known_[idx] = 0;
      prev_val_[idx] = w.val;
      prev_known_[idx] = w.known;
    }
    toggles_[g] = 0;
    duty_[g] = 0;
  }
  std::fill(level_x_.begin(), level_x_.end(), 0);
  cycles_ = 0;
  two_valued_ = false;
  knowns_saturated_ = false;
  prev_fully_known_ = false;
  ud_all_dirty_ = true;
  DropPendingDirt();
}

void Simulator::MarkSourceDirty(GateId g) {
  if (ud_all_dirty_) return;
  const auto& begin = prog_->fanout_begin();
  const auto& instrs = prog_->fanout_instrs();
  for (std::uint32_t k = begin[g]; k < begin[g + 1]; ++k) {
    const std::uint32_t i = instrs[k];
    if (!ud_flag_[i]) {
      ud_flag_[i] = 1;
      ud_pending_.push_back(i);
    }
  }
}

void Simulator::DropPendingDirt() {
  for (std::uint32_t i : ud_pending_) ud_flag_[i] = 0;
  ud_pending_.clear();
}

void Simulator::SetInput(GateId input, Word3 w) {
  PFD_CHECK_MSG(prog_->kind()[input] == GateKind::kInput,
                "SetInput on a non-input gate");
  PFD_CHECK_MSG(IsCanonical(w), "non-canonical input word");
  if (unit_delay_) {
    bool changed = false;
    for (int j = 0; j < words_; ++j) {
      const std::size_t idx = input * static_cast<std::size_t>(words_) + j;
      changed = changed || val_[idx] != w.val || known_[idx] != w.known;
    }
    if (changed) MarkSourceDirty(input);
  }
  for (int j = 0; j < words_; ++j) {
    const std::size_t idx = input * static_cast<std::size_t>(words_) + j;
    val_[idx] = w.val;
    known_[idx] = w.known;
  }
}

Word3 Simulator::ReadFanin3(GateId g, std::uint32_t pin, GateId src,
                            int wo) const {
  Word3 w = Load(src, wo);
  for (const kern::PinForce& pf : pin_forces_) {
    if (pf.gate == g && pf.pin == pin) {
      w = ApplyForce(w, pf.sa0.w[wo], pf.sa1.w[wo]);
    }
  }
  return w;
}

Word3 Simulator::EvalInstr3(std::uint32_t i, int wo) const {
  const CompiledNetlist& p = *prog_;
  const GateId* f = p.fanins().data() + p.fanin_begin()[i];
  switch (p.op()[i]) {
    case Op::kBuf: return Load(f[0], wo);
    case Op::kNot: return Not3(Load(f[0], wo));
    case Op::kAnd2: return And3(Load(f[0], wo), Load(f[1], wo));
    case Op::kOr2: return Or3(Load(f[0], wo), Load(f[1], wo));
    case Op::kNand2: return Not3(And3(Load(f[0], wo), Load(f[1], wo)));
    case Op::kNor2: return Not3(Or3(Load(f[0], wo), Load(f[1], wo)));
    case Op::kXor2: return Xor3(Load(f[0], wo), Load(f[1], wo));
    case Op::kXnor2: return Xnor3(Load(f[0], wo), Load(f[1], wo));
    case Op::kMux2:
      return Mux3(Load(f[0], wo), Load(f[1], wo), Load(f[2], wo));
    case Op::kAndN:
    case Op::kNandN: {
      Word3 w = Load(f[0], wo);
      const std::uint32_t count = p.fanin_count()[i];
      for (std::uint32_t k = 1; k < count; ++k) w = And3(w, Load(f[k], wo));
      return p.op()[i] == Op::kNandN ? Not3(w) : w;
    }
    case Op::kOrN:
    case Op::kNorN: {
      Word3 w = Load(f[0], wo);
      const std::uint32_t count = p.fanin_count()[i];
      for (std::uint32_t k = 1; k < count; ++k) w = Or3(w, Load(f[k], wo));
      return p.op()[i] == Op::kNorN ? Not3(w) : w;
    }
  }
  return kAllX;
}

Word3 Simulator::EvalInstrPinForced3(std::uint32_t i, int wo) const {
  const CompiledNetlist& p = *prog_;
  const GateId g = p.out()[i];
  const GateId* f = p.fanins().data() + p.fanin_begin()[i];
  switch (p.op()[i]) {
    case Op::kBuf: return ReadFanin3(g, 0, f[0], wo);
    case Op::kNot: return Not3(ReadFanin3(g, 0, f[0], wo));
    case Op::kAnd2:
      return And3(ReadFanin3(g, 0, f[0], wo), ReadFanin3(g, 1, f[1], wo));
    case Op::kOr2:
      return Or3(ReadFanin3(g, 0, f[0], wo), ReadFanin3(g, 1, f[1], wo));
    case Op::kNand2:
      return Not3(
          And3(ReadFanin3(g, 0, f[0], wo), ReadFanin3(g, 1, f[1], wo)));
    case Op::kNor2:
      return Not3(
          Or3(ReadFanin3(g, 0, f[0], wo), ReadFanin3(g, 1, f[1], wo)));
    case Op::kXor2:
      return Xor3(ReadFanin3(g, 0, f[0], wo), ReadFanin3(g, 1, f[1], wo));
    case Op::kXnor2:
      return Xnor3(ReadFanin3(g, 0, f[0], wo), ReadFanin3(g, 1, f[1], wo));
    case Op::kMux2:
      return Mux3(ReadFanin3(g, 0, f[0], wo), ReadFanin3(g, 1, f[1], wo),
                  ReadFanin3(g, 2, f[2], wo));
    case Op::kAndN:
    case Op::kNandN: {
      Word3 w = ReadFanin3(g, 0, f[0], wo);
      const std::uint32_t count = p.fanin_count()[i];
      for (std::uint32_t k = 1; k < count; ++k) {
        w = And3(w, ReadFanin3(g, k, f[k], wo));
      }
      return p.op()[i] == Op::kNandN ? Not3(w) : w;
    }
    case Op::kOrN:
    case Op::kNorN: {
      Word3 w = ReadFanin3(g, 0, f[0], wo);
      const std::uint32_t count = p.fanin_count()[i];
      for (std::uint32_t k = 1; k < count; ++k) {
        w = Or3(w, ReadFanin3(g, k, f[k], wo));
      }
      return p.op()[i] == Op::kNorN ? Not3(w) : w;
    }
  }
  return kAllX;
}

void Simulator::ProbeGuard() const {
  if (guard_probe_ != nullptr && guard_probe_->tripped()) {
    throw guard::Tripped{guard_probe_->status()};
  }
}

void Simulator::RefreshKernelMutations() {
  if (!guard::AnyFailpointsArmed()) {
    mut_ = {};
    return;
  }
  mut_.skip_last_level = guard::FailpointFlagged("xcheck.mutate.skip_level");
  mut_.stale_known = guard::FailpointFlagged("xcheck.mutate.stale_known");
  mut_.frontier_off_by_one =
      guard::FailpointFlagged("xcheck.mutate.frontier_off_by_one");
  mut_.toggle_undercount =
      guard::FailpointFlagged("xcheck.mutate.toggle_undercount");
}

void Simulator::SettleUnitDelay(std::uint64_t& substeps,
                                std::uint64_t& evals) {
  const CompiledNetlist& p = *prog_;
  const GateId* out = p.out().data();
  const auto& fanout_begin = p.fanout_begin();
  const auto& fanout_instrs = p.fanout_instrs();

  ud_frontier_.clear();
  if (ud_all_dirty_) {
    DropPendingDirt();
    ud_frontier_.resize(p.num_instructions());
    for (std::uint32_t i = 0; i < ud_frontier_.size(); ++i) {
      ud_frontier_[i] = i;
    }
    ud_all_dirty_ = false;
  } else {
    ud_frontier_.swap(ud_pending_);
    for (std::uint32_t i : ud_frontier_) ud_flag_[i] = 0;
  }

  // Acyclic logic stabilises within depth+1 sub-steps; the bound only
  // protects against structural corruption.
  const std::size_t bound = p.num_instructions() + 1;
  std::size_t rounds = 0;
  while (!ud_frontier_.empty()) {
    PFD_CHECK_MSG(rounds++ <= bound, "unit-delay settle did not stabilise");
    if (mut_.frontier_off_by_one && ud_frontier_.size() > 1) {
      ud_frontier_.pop_back();  // planted bug: one instruction never settles
    }
    ++substeps;
    evals += ud_frontier_.size();

    // Jacobi sub-step: evaluate the whole frontier against the previous
    // sub-step's planes before committing anything, so evaluation order
    // within a sub-step cannot matter.
    ud_scratch_val_.resize(ud_frontier_.size() * words_);
    ud_scratch_known_.resize(ud_frontier_.size() * words_);
    for (std::size_t k = 0; k < ud_frontier_.size(); ++k) {
      const std::uint32_t i = ud_frontier_[k];
      const GateId g = out[i];
      for (int j = 0; j < words_; ++j) {
        Word3 w;
        if (has_any_force_ && has_pin_force_[g]) {
          w = EvalInstrPinForced3(i, j);
        } else {
          w = EvalInstr3(i, j);
        }
        if (has_any_force_) {
          const std::uint64_t sa0 = out_sa0_[g * words_ + j];
          const std::uint64_t sa1 = out_sa1_[g * words_ + j];
          if ((sa0 | sa1) != 0) w = ApplyForce(w, sa0, sa1);
        }
        ud_scratch_val_[k * words_ + j] = w.val;
        ud_scratch_known_[k * words_ + j] = w.known;
      }
    }

    ud_next_.clear();
    for (std::size_t k = 0; k < ud_frontier_.size(); ++k) {
      const std::uint32_t i = ud_frontier_[k];
      const GateId g = out[i];
      bool changed = false;
      for (int j = 0; j < words_; ++j) {
        const std::size_t idx = g * static_cast<std::size_t>(words_) + j;
        if (ud_scratch_val_[k * words_ + j] != val_[idx] ||
            ud_scratch_known_[k * words_ + j] != known_[idx]) {
          changed = true;
          break;
        }
      }
      if (!changed) continue;
      for (int j = 0; j < words_; ++j) {
        const std::size_t idx = g * static_cast<std::size_t>(words_) + j;
        const std::uint64_t nv = ud_scratch_val_[k * words_ + j];
        const std::uint64_t nk = ud_scratch_known_[k * words_ + j];
        if (count_toggles_) {
          toggles_[g] += static_cast<std::uint64_t>(
              std::popcount((val_[idx] ^ nv) & known_[idx] & nk));
        }
        val_[idx] = nv;
        known_[idx] = nk;
      }
      for (std::uint32_t fk = fanout_begin[g]; fk < fanout_begin[g + 1];
           ++fk) {
        const std::uint32_t j = fanout_instrs[fk];
        if (!ud_flag_[j]) {
          ud_flag_[j] = 1;
          ud_next_.push_back(j);
        }
      }
    }
    ud_frontier_.swap(ud_next_);
    for (std::uint32_t i : ud_frontier_) ud_flag_[i] = 0;
    ProbeGuard();
  }
}

void Simulator::Step() {
  RefreshKernelMutations();
  if (has_any_force_ && force_index_dirty_) RebuildForceIndex();
  const CompiledNetlist& p = *prog_;
  const auto& dff_ids = p.dff_ids();
  const auto& dff_d = p.dff_d();

  // 1. Clock edge: DFFs take on the value captured at the end of the
  //    previous cycle. (First cycle: they stay at their power-up X.)
  if (cycles_ > 0) {
    for (GateId d : dff_ids) {
      bool changed = false;
      for (int j = 0; j < words_; ++j) {
        const std::size_t idx = d * static_cast<std::size_t>(words_) + j;
        std::uint64_t v = dff_next_val_[idx];
        std::uint64_t kn = dff_next_known_[idx];
        if (has_any_force_ && has_out_force_[d]) {
          const std::uint64_t sa0 = out_sa0_[idx];
          const std::uint64_t sa1 = out_sa1_[idx];
          if ((sa0 | sa1) != 0) {
            kn |= sa0 | sa1;
            v = (v | sa1) & ~sa0;
          }
        }
        changed = changed || v != val_[idx] || kn != known_[idx];
        val_[idx] = v;
        known_[idx] = kn;
      }
      if (unit_delay_ && changed) MarkSourceDirty(d);
    }
  } else if (has_any_force_) {
    for (GateId d : dff_ids) {
      if (!has_out_force_[d]) continue;
      for (int j = 0; j < words_; ++j) {
        const std::size_t idx = d * static_cast<std::size_t>(words_) + j;
        const std::uint64_t sa0 = out_sa0_[idx];
        const std::uint64_t sa1 = out_sa1_[idx];
        if ((sa0 | sa1) != 0) {
          Store(d, j, ApplyForce(Load(d, j), sa0, sa1));
        }
      }
    }
  }

  // 2. Inputs may carry output forces too (a stuck primary input).
  if (has_any_force_) {
    for (GateId in : p.input_ids()) {
      if (!has_out_force_[in]) continue;
      bool changed = false;
      for (int j = 0; j < words_; ++j) {
        const std::size_t idx = in * static_cast<std::size_t>(words_) + j;
        const std::uint64_t sa0 = out_sa0_[idx];
        const std::uint64_t sa1 = out_sa1_[idx];
        if ((sa0 | sa1) != 0) {
          const Word3 w = ApplyForce(Load(in, j), sa0, sa1);
          changed = changed || w.val != val_[idx] || w.known != known_[idx];
          Store(in, j, w);
        }
      }
      if (unit_delay_ && changed) MarkSourceDirty(in);
    }
  }

  // 3. Pick the settle mode. The fast path is exact: when every source is
  //    fully known, every Word3 operator (and every force) produces fully
  //    known outputs, so the known planes would all saturate anyway — we
  //    saturate them once on entry and stop maintaining them.
  bool two_valued = false;
  if (!unit_delay_) {
    std::uint64_t unknown = 0;
    for (GateId s : p.source_ids()) {
      for (int j = 0; j < words_; ++j) {
        unknown |= ~known_[s * static_cast<std::size_t>(words_) + j];
      }
    }
    two_valued = unknown == 0;
    if (two_valued && !knowns_saturated_) {
      if (!mut_.stale_known) {  // planted bug: keep stale planes/watermark
        std::fill(known_.begin(), known_.end(), ~0ULL);
        std::fill(level_x_.begin(), level_x_.end(), 0);
      }
      knowns_saturated_ = true;
    }
    if (!two_valued) knowns_saturated_ = false;
  } else {
    knowns_saturated_ = false;
  }

  // 4. Combinational settle: zero-delay runs the dispatched width/backend
  //    kernels, unit-delay the event-driven per-word sweep.
  std::uint64_t settle_substeps = 0;  // unit-delay only
  std::uint64_t gate_evals = 0;
  if (!unit_delay_) {
    kern::Ctx c;
    c.prog = prog_.get();
    c.val = val_.data();
    c.known = known_.data();
    c.out_sa0 = out_sa0_.data();
    c.out_sa1 = out_sa1_.data();
    c.pin_forces = pin_forces_.data();
    c.num_pin_forces = pin_forces_.size();
    c.has_pin_force = has_pin_force_.data();
    c.has_out_force = has_out_force_.data();
    c.pin_force_slot = pin_force_slot_.data();
    c.level_x = level_x_.data();
    c.guard_probe = guard_probe_;
    c.skip_last_level = mut_.skip_last_level;
    if (two_valued) {
      (has_any_force_ ? kernels_->settle2_forced : kernels_->settle2)(c);
    } else {
      (has_any_force_ ? kernels_->settle3_forced : kernels_->settle3)(c);
    }
    gate_evals = p.num_instructions();
    // Everything is settled, so dirt queued for the unit-delay worklist
    // (input edits, DFF commits) is consumed.
    DropPendingDirt();
    ud_all_dirty_ = false;
  } else {
    SettleUnitDelay(settle_substeps, gate_evals);
  }
  // Falling off the two-valued fast path is a (rare) cost cliff worth a
  // post-mortem timeline entry: an X crept into a source mid-run.
  if (two_valued_ && !two_valued && obs::FlightEnabled()) {
    obs::RecordFlight(obs::FlightKind::kFallback3V, "logicsim.step",
                      "cycle " + std::to_string(cycles_) +
                          ": left the two-valued fast path");
  }
  two_valued_ = two_valued;

  // 5. Switching activity: one potential transition per net per cycle in
  //    the zero-delay model; the unit-delay path already counted
  //    combinational (glitch) transitions per sub-step, so here it only
  //    accounts the sequential/input nets and the duty cycle.
  if (count_toggles_) {
    // Planted bug (xcheck.mutate.toggle_undercount): the last gate's
    // switching activity is silently dropped.
    const std::size_t num_gates = nl_->size();
    const std::size_t n =
        mut_.toggle_undercount && num_gates != 0 ? num_gates - 1 : num_gates;
    if (two_valued && prev_fully_known_) {
      // Steady-state fast path: every lane of every net is known, in this
      // cycle and the previous one.
      for (std::size_t g = 0; g < n; ++g) {
        for (int j = 0; j < words_; ++j) {
          const std::size_t idx = g * words_ + j;
          toggles_[g] += static_cast<std::uint64_t>(
              std::popcount(prev_val_[idx] ^ val_[idx]));
          duty_[g] += static_cast<std::uint64_t>(std::popcount(val_[idx]));
        }
      }
      prev_val_ = val_;
    } else {
      const auto& is_comb = p.is_comb();
      for (std::size_t g = 0; g < n; ++g) {
        for (int j = 0; j < words_; ++j) {
          const std::size_t idx = g * words_ + j;
          const std::uint64_t cur_v = val_[idx];
          const std::uint64_t cur_k = known_[idx];
          if (!unit_delay_ || !is_comb[g]) {
            toggles_[g] += static_cast<std::uint64_t>(std::popcount(
                (prev_val_[idx] ^ cur_v) & prev_known_[idx] & cur_k));
          }
          duty_[g] +=
              static_cast<std::uint64_t>(std::popcount(cur_v & cur_k));
        }
      }
      prev_val_ = val_;
      prev_known_ = known_;
    }
    prev_fully_known_ = two_valued;
  }

  // 6. Capture next DFF state from the settled D pins (with pin forces).
  for (std::size_t k = 0; k < dff_ids.size(); ++k) {
    const GateId d = dff_ids[k];
    const std::int32_t fi = has_any_force_ ? dff_force_idx_[k] : -1;
    for (int j = 0; j < words_; ++j) {
      Word3 w = Load(dff_d[k], j);
      if (fi >= 0) {
        const kern::PinForce& pf = pin_forces_[fi];
        w = ApplyForce(w, pf.sa0.w[j], pf.sa1.w[j]);
      }
      const std::size_t idx = d * static_cast<std::size_t>(words_) + j;
      dff_next_val_[idx] = w.val;
      dff_next_known_[idx] = w.known;
    }
  }

  // Counter updates happen once per Step (one batch of machine-cycles), so
  // the guard is a single relaxed load per ~N gate evaluations.
  if (obs::Enabled()) {
    obs_cycles_->Add(1);
    obs_gate_evals_->Add(gate_evals);
    if (unit_delay_) {
      obs_substeps_->Add(settle_substeps);
      obs_settle_hist_->Record(settle_substeps);
    }
    if (two_valued) obs_two_valued_->Add(1);
  }

  ++cycles_;
}

void Simulator::PackLane0(std::uint64_t* val_bits,
                          std::uint64_t* known_bits) const {
  const std::size_t n = nl_->size();
  const std::size_t words = (n + 63) / 64;
  std::fill(val_bits, val_bits + words, 0);
  std::fill(known_bits, known_bits + words, 0);
  for (std::size_t g = 0; g < n; ++g) {
    val_bits[g >> 6] |= (val_[g * words_] & 1ULL) << (g & 63);
    known_bits[g >> 6] |= (known_[g * words_] & 1ULL) << (g & 63);
  }
}

void Simulator::ForceOutput(GateId g, Trit value, const LaneMask& mask) {
  PFD_CHECK_MSG(value != Trit::kX, "cannot force X");
  for (int j = 0; j < words_; ++j) {
    const std::size_t idx = g * static_cast<std::size_t>(words_) + j;
    if (value == Trit::kZero) {
      out_sa0_[idx] |= mask.w[j];
    } else {
      out_sa1_[idx] |= mask.w[j];
    }
  }
  has_out_force_[g] = 1;
  has_any_force_ = true;
  ud_all_dirty_ = true;
  force_index_dirty_ = true;
}

void Simulator::ForcePin(GateId g, std::uint32_t pin, Trit value,
                         const LaneMask& mask) {
  PFD_CHECK_MSG(value != Trit::kX, "cannot force X");
  PFD_CHECK_MSG(pin < nl_->Fanins(g).size(), "pin out of range");
  has_any_force_ = true;
  ud_all_dirty_ = true;
  force_index_dirty_ = true;
  for (kern::PinForce& pf : pin_forces_) {
    if (pf.gate == g && pf.pin == pin) {
      LaneMask& target = value == Trit::kZero ? pf.sa0 : pf.sa1;
      for (int j = 0; j < kMaxLaneWords; ++j) target.w[j] |= mask.w[j];
      return;
    }
  }
  kern::PinForce pf;
  pf.gate = g;
  pf.pin = pin;
  (value == Trit::kZero ? pf.sa0 : pf.sa1) = mask;
  pin_forces_.push_back(pf);
  has_pin_force_[g] = 1;
}

void Simulator::ClearForces() {
  std::fill(out_sa0_.begin(), out_sa0_.end(), 0);
  std::fill(out_sa1_.begin(), out_sa1_.end(), 0);
  std::fill(has_pin_force_.begin(), has_pin_force_.end(), 0);
  std::fill(has_out_force_.begin(), has_out_force_.end(), 0);
  pin_forces_.clear();
  has_any_force_ = false;
  ud_all_dirty_ = true;
  force_index_dirty_ = true;
}

// Rebuilds the O(1) pin-force lookup tables. ForcePin merges repeat forces
// on the same (gate, pin) into one PinForce entry, so each fanin slot maps
// to at most one pin_forces_ index.
void Simulator::RebuildForceIndex() {
  const CompiledNetlist& p = *prog_;
  pin_force_slot_.assign(p.fanins().size(), -1);
  for (std::size_t k = 0; k < pin_forces_.size(); ++k) {
    const kern::PinForce& pf = pin_forces_[k];
    const std::uint32_t i = p.instr_of_gate()[pf.gate];
    if (i != CompiledNetlist::kNoInstr) {
      pin_force_slot_[p.fanin_begin()[i] + pf.pin] =
          static_cast<std::int32_t>(k);
    }
  }
  const auto& dff_ids = p.dff_ids();
  dff_force_idx_.assign(dff_ids.size(), -1);
  for (std::size_t k = 0; k < dff_ids.size(); ++k) {
    const GateId d = dff_ids[k];
    if (!has_pin_force_[d]) continue;
    for (std::size_t f = 0; f < pin_forces_.size(); ++f) {
      if (pin_forces_[f].gate == d && pin_forces_[f].pin == 0) {
        dff_force_idx_[k] = static_cast<std::int32_t>(f);
        break;
      }
    }
  }
  force_index_dirty_ = false;
}

void Simulator::EnableToggleCounting(bool enable) {
  // Sync the snapshot so enabling mid-run does not count a bogus transition
  // from stale values.
  if (enable && !count_toggles_) {
    prev_val_ = val_;
    prev_known_ = known_;
    prev_fully_known_ = false;
  }
  count_toggles_ = enable;
}

void Simulator::ResetToggleCounts() {
  std::fill(toggles_.begin(), toggles_.end(), 0);
  std::fill(duty_.begin(), duty_.end(), 0);
}

}  // namespace pfd::logicsim
