#include "logicsim/golden_cache.hpp"

#include <cstdio>

#include "obs/flight.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"

namespace pfd::logicsim {

namespace {

std::string KeyString(const GoldenKey& key) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "nl=%016llx stim=%016llx cycles=%llu",
                static_cast<unsigned long long>(key.netlist_hash),
                static_cast<unsigned long long>(key.stimulus_hash),
                static_cast<unsigned long long>(key.cycles));
  return buf;
}

}  // namespace

GoldenTraceCache& GoldenTraceCache::Global() {
  static GoldenTraceCache* cache = new GoldenTraceCache();
  return *cache;
}

std::shared_ptr<const GoldenEntry> GoldenTraceCache::Find(
    const GoldenKey& key) {
  const bool obs_on = obs::Enabled();
  const double t0 = obs_on ? obs::NowMicros() : 0.0;
  std::shared_ptr<const GoldenEntry> entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) entry = it->second;
  }
  if (obs_on) {
    obs::Registry& reg = obs::Registry::Global();
    reg.GetCounter(entry != nullptr ? "logicsim.golden_cache.hits"
                                    : "logicsim.golden_cache.misses")
        .Add(1);
    reg.GetHistogram("logicsim.golden_cache.lookup_us")
        .RecordDouble(obs::NowMicros() - t0);
  }
  return entry;
}

std::shared_ptr<const GoldenEntry> GoldenTraceCache::Insert(
    const GoldenKey& key, std::shared_ptr<const GoldenEntry> entry) {
  if (entry == nullptr) return nullptr;
  bool inserted = false;
  std::vector<GoldenKey> evicted;
  std::shared_ptr<const GoldenEntry> resident;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // First insert wins: concurrent producers computed identical artefacts,
    // so keeping the incumbent preserves pointer stability for held refs.
    // Probe before emplacing — emplace may move from `entry` even when the
    // key already exists, and the loser's pointer must survive to be
    // handed back as the resident artefact.
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      resident = it->second;
    } else {
      resident = entry;
      entries_.emplace(key, std::move(entry));
      insertion_order_.push_back(key);
      inserted = true;
      while (entries_.size() > kMaxEntries) {
        evicted.push_back(insertion_order_.front());
        entries_.erase(insertion_order_.front());
        insertion_order_.erase(insertion_order_.begin());
      }
    }
  }
  if (obs::Enabled()) {
    obs::Registry::Global()
        .GetCounter(inserted ? "logicsim.golden_cache.insertions"
                             : "logicsim.golden_cache.dropped_inserts")
        .Add(1);
  }
  if (obs::FlightEnabled()) {
    obs::RecordFlight(inserted ? obs::FlightKind::kCacheInsert
                               : obs::FlightKind::kCacheDrop,
                      "logicsim.golden_cache", KeyString(key));
    for (const GoldenKey& k : evicted) {
      obs::RecordFlight(obs::FlightKind::kCacheEvict, "logicsim.golden_cache",
                        KeyString(k));
    }
  }
  return resident;
}

std::size_t GoldenTraceCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void GoldenTraceCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  insertion_order_.clear();
}

}  // namespace pfd::logicsim
