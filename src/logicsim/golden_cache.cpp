#include "logicsim/golden_cache.hpp"

#include <cstdio>

#include "obs/flight.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"

namespace pfd::logicsim {

namespace {

std::string KeyString(const GoldenKey& key) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "nl=%016llx stim=%016llx cycles=%llu",
                static_cast<unsigned long long>(key.netlist_hash),
                static_cast<unsigned long long>(key.stimulus_hash),
                static_cast<unsigned long long>(key.cycles));
  return buf;
}

// Accounted payload size of one entry. The fixed overhead stands in for the
// map node, key, and LRU link, so even an all-empty entry has nonzero cost
// and a churn of empty entries still hits the capacity.
std::size_t EntryBytes(const GoldenEntry& e) {
  constexpr std::size_t kPerEntryOverhead = 96;
  return kPerEntryOverhead + sizeof(GoldenEntry) +
         e.trits.size() * sizeof(Trit) + e.scalars.size() * sizeof(double) +
         e.counts.size() * sizeof(std::uint64_t);
}

void RecordEvictions(const std::vector<GoldenKey>& evicted) {
  if (evicted.empty()) return;
  if (obs::Enabled()) {
    obs::Registry::Global()
        .GetCounter("logicsim.golden_cache.evictions")
        .Add(evicted.size());
  }
  if (obs::FlightEnabled()) {
    for (const GoldenKey& k : evicted) {
      obs::RecordFlight(obs::FlightKind::kCacheEvict, "logicsim.golden_cache",
                        KeyString(k));
    }
  }
}

}  // namespace

GoldenTraceCache& GoldenTraceCache::Global() {
  static GoldenTraceCache* cache = new GoldenTraceCache();
  return *cache;
}

void GoldenTraceCache::EvictLocked(const GoldenKey* keep,
                                   std::vector<GoldenKey>& evicted) {
  while (total_bytes_ > capacity_bytes_ && entries_.size() > 1) {
    // Victim partition: most resident bytes; map order (ascending hash)
    // breaks ties toward the smaller hash. A partition whose only entry is
    // the just-inserted key is exempt — the newest entry always survives.
    Partition* victim_part = nullptr;
    for (auto& [hash, part] : partitions_) {
      if (keep != nullptr && part.order.size() == 1 &&
          part.order.front() == *keep) {
        continue;
      }
      if (victim_part == nullptr || part.bytes > victim_part->bytes) {
        victim_part = &part;
      }
    }
    if (victim_part == nullptr) return;  // only the kept entry is evictable
    const GoldenKey victim = victim_part->order.front();
    const auto it = entries_.find(victim);
    victim_part->order.pop_front();
    victim_part->bytes -= it->second.bytes;
    total_bytes_ -= it->second.bytes;
    entries_.erase(it);
    if (victim_part->order.empty()) partitions_.erase(victim.netlist_hash);
    evicted.push_back(victim);
  }
}

std::shared_ptr<const GoldenEntry> GoldenTraceCache::Find(
    const GoldenKey& key) {
  const bool obs_on = obs::Enabled();
  const double t0 = obs_on ? obs::NowMicros() : 0.0;
  std::shared_ptr<const GoldenEntry> entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      entry = it->second.entry;
      // Touch: most-recently-used within the design's partition.
      Partition& part = partitions_[key.netlist_hash];
      part.order.splice(part.order.end(), part.order, it->second.pos);
    }
  }
  if (obs_on) {
    obs::Registry& reg = obs::Registry::Global();
    reg.GetCounter(entry != nullptr ? "logicsim.golden_cache.hits"
                                    : "logicsim.golden_cache.misses")
        .Add(1);
    reg.GetHistogram("logicsim.golden_cache.lookup_us")
        .RecordDouble(obs::NowMicros() - t0);
  }
  return entry;
}

std::shared_ptr<const GoldenEntry> GoldenTraceCache::Insert(
    const GoldenKey& key, std::shared_ptr<const GoldenEntry> entry) {
  if (entry == nullptr) return nullptr;
  bool inserted = false;
  std::vector<GoldenKey> evicted;
  std::shared_ptr<const GoldenEntry> resident;
  std::size_t bytes_after = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // First insert wins: concurrent producers computed identical artefacts,
    // so keeping the incumbent preserves pointer stability for held refs.
    // Probe before emplacing — emplace may move from `entry` even when the
    // key already exists, and the loser's pointer must survive to be
    // handed back as the resident artefact.
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      resident = it->second.entry;
    } else {
      Node node;
      node.bytes = EntryBytes(*entry);
      node.entry = std::move(entry);
      resident = node.entry;
      Partition& part = partitions_[key.netlist_hash];
      part.order.push_back(key);
      node.pos = std::prev(part.order.end());
      part.bytes += node.bytes;
      total_bytes_ += node.bytes;
      entries_.emplace(key, std::move(node));
      inserted = true;
      EvictLocked(&key, evicted);
    }
    bytes_after = total_bytes_;
  }
  if (obs::Enabled()) {
    obs::Registry& reg = obs::Registry::Global();
    reg.GetCounter(inserted ? "logicsim.golden_cache.insertions"
                            : "logicsim.golden_cache.dropped_inserts")
        .Add(1);
    reg.GetGauge("logicsim.golden_cache.bytes")
        .Set(static_cast<double>(bytes_after));
  }
  if (obs::FlightEnabled()) {
    obs::RecordFlight(inserted ? obs::FlightKind::kCacheInsert
                               : obs::FlightKind::kCacheDrop,
                      "logicsim.golden_cache", KeyString(key));
  }
  RecordEvictions(evicted);
  return resident;
}

std::size_t GoldenTraceCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::size_t GoldenTraceCache::bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_bytes_;
}

std::size_t GoldenTraceCache::capacity_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_bytes_;
}

void GoldenTraceCache::SetCapacityBytes(std::size_t capacity) {
  std::vector<GoldenKey> evicted;
  {
    std::lock_guard<std::mutex> lock(mu_);
    capacity_bytes_ = capacity;
    EvictLocked(nullptr, evicted);
    // With no protected key, a final over-capacity single entry is allowed
    // to remain: the newest-survives rule degenerates to last-one-stays.
  }
  RecordEvictions(evicted);
}

void GoldenTraceCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  partitions_.clear();
  total_bytes_ = 0;
}

}  // namespace pfd::logicsim
