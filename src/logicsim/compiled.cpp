#include "logicsim/compiled.hpp"

#include <algorithm>
#include <mutex>
#include <unordered_map>

#include "base/error.hpp"
#include "obs/obs.hpp"

namespace pfd::logicsim {

using netlist::GateId;
using netlist::GateKind;

namespace {

// Process-wide Compile() memoization, keyed by StructuralHash (the same
// key discipline as the golden-trace cache). FIFO-capped: a long-lived
// process cycling many generated netlists (the xcheck sweeps) must not
// accumulate programs without bound.
struct CompileCache {
  static constexpr std::size_t kMaxEntries = 64;
  std::mutex mu;
  std::unordered_map<std::uint64_t, std::shared_ptr<const CompiledNetlist>>
      entries;
  std::vector<std::uint64_t> insertion_order;
};

CompileCache& GlobalCompileCache() {
  static CompileCache* cache = new CompileCache();  // leaked: process-long
  return *cache;
}

Op Specialize(GateKind kind, std::size_t arity) {
  switch (kind) {
    case GateKind::kBuf: return Op::kBuf;
    case GateKind::kNot: return Op::kNot;
    case GateKind::kAnd: return arity == 2 ? Op::kAnd2 : Op::kAndN;
    case GateKind::kOr: return arity == 2 ? Op::kOr2 : Op::kOrN;
    case GateKind::kNand: return arity == 2 ? Op::kNand2 : Op::kNandN;
    case GateKind::kNor: return arity == 2 ? Op::kNor2 : Op::kNorN;
    case GateKind::kXor: return Op::kXor2;
    case GateKind::kXnor: return Op::kXnor2;
    case GateKind::kMux2: return Op::kMux2;
    default:
      PFD_CHECK_MSG(false, "Specialize on non-combinational gate");
      return Op::kBuf;
  }
}

}  // namespace

std::shared_ptr<const CompiledNetlist> CompiledNetlist::Compile(
    const netlist::Netlist& nl) {
  const std::uint64_t hash = nl.StructuralHash();
  CompileCache& cache = GlobalCompileCache();
  {
    std::lock_guard<std::mutex> lock(cache.mu);
    const auto it = cache.entries.find(hash);
    if (it != cache.entries.end()) {
      if (obs::Enabled()) {
        obs::Registry::Global().GetCounter("logicsim.compile_cache.hits")
            .Add(1);
      }
      return it->second;
    }
  }
  if (obs::Enabled()) {
    obs::Registry::Global().GetCounter("logicsim.compile_cache.misses").Add(1);
  }

  nl.Validate();
  auto prog = std::shared_ptr<CompiledNetlist>(new CompiledNetlist());
  const std::size_t n = nl.size();
  prog->num_gates_ = n;
  prog->structural_hash_ = hash;

  prog->kind_.resize(n);
  prog->is_comb_.resize(n);
  for (GateId g = 0; g < n; ++g) {
    const GateKind kind = nl.gate(g).kind;
    prog->kind_[g] = kind;
    prog->is_comb_[g] = netlist::IsCombinational(kind) ? 1 : 0;
    switch (kind) {
      case GateKind::kInput:
        prog->input_ids_.push_back(g);
        break;
      case GateKind::kDff:
        prog->dff_ids_.push_back(g);
        prog->dff_d_.push_back(nl.Fanins(g)[0]);
        break;
      default:
        break;
    }
  }
  prog->source_ids_ = prog->input_ids_;
  prog->source_ids_.insert(prog->source_ids_.end(), prog->dff_ids_.begin(),
                           prog->dff_ids_.end());

  // Levelize: level(g) = 1 + max level over combinational fanins (sources
  // are level 0). CombinationalOrder is a valid topological order, so one
  // forward pass computes every level.
  std::vector<std::uint32_t> level_of(n, 0);
  std::uint32_t max_level = 0;
  const std::vector<GateId>& order = nl.CombinationalOrder();
  for (GateId g : order) {
    std::uint32_t lvl = 1;
    for (GateId f : nl.Fanins(g)) {
      if (prog->is_comb_[f]) lvl = std::max(lvl, level_of[f] + 1);
    }
    level_of[g] = lvl;
    max_level = std::max(max_level, lvl);
  }

  // Bucket the instructions level-major; within a level keep id order so
  // the layout (and therefore any evaluation-order-dependent observation)
  // is deterministic.
  const std::size_t num_comb = order.size();
  std::vector<GateId> by_level(order);
  std::sort(by_level.begin(), by_level.end(), [&](GateId a, GateId b) {
    return level_of[a] != level_of[b] ? level_of[a] < level_of[b] : a < b;
  });

  prog->op_.reserve(num_comb);
  prog->out_.reserve(num_comb);
  prog->fanin_begin_.reserve(num_comb);
  prog->fanin_count_.reserve(num_comb);
  prog->instr_level_.reserve(num_comb);
  prog->instr_of_gate_.assign(n, kNoInstr);
  prog->levels_.resize(max_level);  // levels 1..max_level
  std::uint32_t cursor = 0;
  for (std::uint32_t lvl = 1; lvl <= max_level; ++lvl) {
    Level& out_level = prog->levels_[lvl - 1];
    out_level.begin = cursor;
    while (cursor < by_level.size() && level_of[by_level[cursor]] == lvl) {
      const GateId g = by_level[cursor];
      const auto fanins = nl.Fanins(g);
      prog->op_.push_back(Specialize(nl.gate(g).kind, fanins.size()));
      prog->out_.push_back(g);
      prog->fanin_begin_.push_back(
          static_cast<std::uint32_t>(prog->fanins_.size()));
      prog->fanin_count_.push_back(static_cast<std::uint32_t>(fanins.size()));
      prog->fanins_.insert(prog->fanins_.end(), fanins.begin(), fanins.end());
      prog->instr_level_.push_back(lvl - 1);
      prog->instr_of_gate_[g] = cursor;
      ++cursor;
    }
    out_level.end = cursor;
  }

  // Combinational fanout adjacency (CSR over gate ids): which instructions
  // read gate g. Counting pass, prefix sum, fill pass.
  prog->fanout_begin_.assign(n + 1, 0);
  for (std::size_t i = 0; i < prog->op_.size(); ++i) {
    const std::uint32_t begin = prog->fanin_begin_[i];
    const std::uint32_t count = prog->fanin_count_[i];
    for (std::uint32_t k = 0; k < count; ++k) {
      ++prog->fanout_begin_[prog->fanins_[begin + k] + 1];
    }
  }
  for (std::size_t g = 0; g < n; ++g) {
    prog->fanout_begin_[g + 1] += prog->fanout_begin_[g];
  }
  prog->fanout_instrs_.resize(prog->fanout_begin_[n]);
  std::vector<std::uint32_t> fill(prog->fanout_begin_.begin(),
                                  prog->fanout_begin_.end() - 1);
  for (std::size_t i = 0; i < prog->op_.size(); ++i) {
    const std::uint32_t begin = prog->fanin_begin_[i];
    const std::uint32_t count = prog->fanin_count_[i];
    for (std::uint32_t k = 0; k < count; ++k) {
      prog->fanout_instrs_[fill[prog->fanins_[begin + k]]++] =
          static_cast<std::uint32_t>(i);
    }
  }

  // Publish under first-insert-wins semantics: racing compilers of the same
  // structure produced identical programs, so everyone converges on the
  // resident pointer and later constructions share it.
  {
    std::lock_guard<std::mutex> lock(cache.mu);
    const auto [it, inserted] = cache.entries.emplace(hash, prog);
    if (inserted) {
      cache.insertion_order.push_back(hash);
      if (cache.insertion_order.size() > CompileCache::kMaxEntries) {
        cache.entries.erase(cache.insertion_order.front());
        cache.insertion_order.erase(cache.insertion_order.begin());
        if (obs::Enabled()) {
          obs::Registry::Global()
              .GetCounter("logicsim.compile_cache.evictions")
              .Add(1);
        }
      }
    }
    return it->second;
  }
}

}  // namespace pfd::logicsim
