// Compiled form of a netlist for the simulation hot path.
//
// `Netlist` is built for construction and analysis: per-gate structs, name
// tables, span accessors. The settle loop wants none of that — it wants
// contiguous instruction streams it can march through without pointer
// chasing. `CompiledNetlist` levelizes the combinational gates (level =
// 1 + max level of combinational fanins; sources are level 0) and lays the
// instructions out level-major in structure-of-arrays form:
//
//   op_[i]           specialized opcode (And2 vs AndN, ...) — the generic
//                    GateKind switch plus arity loop becomes one dispatch
//   out_[i]          gate id whose value plane the instruction writes
//   fanin_begin_[i]  } flattened fanin gate ids in fanins_
//   fanin_count_[i]  }
//
// Level boundaries are preserved (levels()): within a level no instruction
// reads another's output, which is what lets the simulator put cooperative
// guard checkpoints between levels, and record a per-level "any X present"
// watermark during three-valued settles.
//
// The compiled program also carries the data the per-cycle loop needs
// without allocating: cached input/DFF/source id lists (Netlist::InputIds
// returns a fresh vector per call), DFF D fanins, a combinational-fanout
// adjacency (gate id -> instruction indices reading it) for the unit-delay
// dirty worklist, and the netlist's StructuralHash for golden-trace cache
// keys.
//
// A CompiledNetlist is immutable after Compile and shared by every copy of
// the owning Simulator (shared_ptr<const>), so copying a warmed simulator —
// the Monte Carlo power engine does this per batch — shares one program.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "netlist/netlist.hpp"

namespace pfd::logicsim {

// Specialized opcodes. The two-input forms of the commutative gates are by
// far the most common after synthesis; splitting them from the N-ary forms
// removes the inner fanin loop (and its trip-count branch) from most
// instructions.
enum class Op : std::uint8_t {
  kBuf,
  kNot,
  kAnd2,
  kOr2,
  kNand2,
  kNor2,
  kXor2,
  kXnor2,
  kMux2,
  kAndN,
  kOrN,
  kNandN,
  kNorN,
};

class CompiledNetlist {
 public:
  // Half-open instruction range [begin, end) of one level.
  struct Level {
    std::uint32_t begin = 0;
    std::uint32_t end = 0;
  };

  // Validates and compiles. The returned program is tied to the structure
  // of `nl` at compile time; it holds no reference to the Netlist itself.
  static std::shared_ptr<const CompiledNetlist> Compile(
      const netlist::Netlist& nl);

  std::size_t num_gates() const { return num_gates_; }
  std::size_t num_instructions() const { return op_.size(); }

  const std::vector<Level>& levels() const { return levels_; }

  // Instruction streams (index = instruction position, level-major).
  const std::vector<Op>& op() const { return op_; }
  const std::vector<netlist::GateId>& out() const { return out_; }
  const std::vector<std::uint32_t>& fanin_begin() const {
    return fanin_begin_;
  }
  const std::vector<std::uint32_t>& fanin_count() const {
    return fanin_count_;
  }
  const std::vector<netlist::GateId>& fanins() const { return fanins_; }

  // Cached id lists (creation order, matching Netlist::InputIds/DffIds).
  const std::vector<netlist::GateId>& input_ids() const { return input_ids_; }
  const std::vector<netlist::GateId>& dff_ids() const { return dff_ids_; }
  // D-pin fanin of dff_ids()[k].
  const std::vector<netlist::GateId>& dff_d() const { return dff_d_; }
  // Inputs and DFFs — the gates whose known-planes decide two-valued
  // eligibility (constants are known from Reset and never revert).
  const std::vector<netlist::GateId>& source_ids() const {
    return source_ids_;
  }

  // Combinational fanout adjacency: instruction indices reading gate g's
  // output, for g in [0, num_gates). CSR layout.
  const std::vector<std::uint32_t>& fanout_begin() const {
    return fanout_begin_;
  }
  const std::vector<std::uint32_t>& fanout_instrs() const {
    return fanout_instrs_;
  }

  // Per-gate kind snapshot (avoids touching the Netlist on the hot path).
  const std::vector<netlist::GateKind>& kind() const { return kind_; }
  // 1 for combinational gates (kBuf..kMux2).
  const std::vector<std::uint8_t>& is_comb() const { return is_comb_; }

  std::uint64_t structural_hash() const { return structural_hash_; }

 private:
  CompiledNetlist() = default;

  std::size_t num_gates_ = 0;
  std::vector<Level> levels_;
  std::vector<Op> op_;
  std::vector<netlist::GateId> out_;
  std::vector<std::uint32_t> fanin_begin_;
  std::vector<std::uint32_t> fanin_count_;
  std::vector<netlist::GateId> fanins_;
  std::vector<netlist::GateId> input_ids_;
  std::vector<netlist::GateId> dff_ids_;
  std::vector<netlist::GateId> dff_d_;
  std::vector<netlist::GateId> source_ids_;
  std::vector<std::uint32_t> fanout_begin_;
  std::vector<std::uint32_t> fanout_instrs_;
  std::vector<netlist::GateKind> kind_;
  std::vector<std::uint8_t> is_comb_;
  std::uint64_t structural_hash_ = 0;
};

}  // namespace pfd::logicsim
