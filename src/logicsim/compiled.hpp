// Compiled form of a netlist for the simulation hot path.
//
// `Netlist` is built for construction and analysis: per-gate structs, name
// tables, span accessors. The settle loop wants none of that — it wants
// contiguous instruction streams it can march through without pointer
// chasing. `CompiledNetlist` levelizes the combinational gates (level =
// 1 + max level of combinational fanins; sources are level 0) and lays the
// instructions out level-major in structure-of-arrays form:
//
//   op_[i]           specialized opcode (And2 vs AndN, ...) — the generic
//                    GateKind switch plus arity loop becomes one dispatch
//   out_[i]          gate id whose value plane the instruction writes
//   fanin_begin_[i]  } flattened fanin gate ids in fanins_
//   fanin_count_[i]  }
//
// Level boundaries are preserved (levels()): within a level no instruction
// reads another's output, which is what lets the simulator put cooperative
// guard checkpoints between levels, and record a per-level "any X present"
// watermark during three-valued settles.
//
// The compiled program also carries the data the per-cycle loop needs
// without allocating: cached input/DFF/source id lists (Netlist::InputIds
// returns a fresh vector per call), DFF D fanins, a combinational-fanout
// adjacency (gate id -> instruction indices reading it) for the unit-delay
// dirty worklist, and the netlist's StructuralHash for golden-trace cache
// keys.
//
// A CompiledNetlist is immutable after Compile and shared by every copy of
// the owning Simulator (shared_ptr<const>), so copying a warmed simulator —
// the Monte Carlo power engine does this per batch — shares one program.
//
// Compile() memoizes process-wide by Netlist::StructuralHash(): the fault
// engines construct one Simulator per shard (the serial engine one per
// fault), and before the cache each construction re-levelized the same
// graph. The hash covers everything Compile reads (gate count, kinds,
// module tags, fanin arities and ids), so structurally identical netlists
// share one immutable program; the usual 64-bit-collision caveat applies
// and is accepted, matching the golden-trace cache's use of the same hash.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "netlist/netlist.hpp"

namespace pfd::logicsim {

// Specialized opcodes. The two-input forms of the commutative gates are by
// far the most common after synthesis; splitting them from the N-ary forms
// removes the inner fanin loop (and its trip-count branch) from most
// instructions.
enum class Op : std::uint8_t {
  kBuf,
  kNot,
  kAnd2,
  kOr2,
  kNand2,
  kNor2,
  kXor2,
  kXnor2,
  kMux2,
  kAndN,
  kOrN,
  kNandN,
  kNorN,
};

class CompiledNetlist {
 public:
  // Half-open instruction range [begin, end) of one level.
  struct Level {
    std::uint32_t begin = 0;
    std::uint32_t end = 0;
  };

  // Validates and compiles, memoized process-wide by StructuralHash (see
  // header comment). The returned program is tied to the structure of `nl`
  // at compile time; it holds no reference to the Netlist itself.
  static std::shared_ptr<const CompiledNetlist> Compile(
      const netlist::Netlist& nl);

  std::size_t num_gates() const { return num_gates_; }
  std::size_t num_instructions() const { return op_.size(); }

  const std::vector<Level>& levels() const { return levels_; }

  // Instruction streams (index = instruction position, level-major).
  const std::vector<Op>& op() const { return op_; }
  const std::vector<netlist::GateId>& out() const { return out_; }
  const std::vector<std::uint32_t>& fanin_begin() const {
    return fanin_begin_;
  }
  const std::vector<std::uint32_t>& fanin_count() const {
    return fanin_count_;
  }
  const std::vector<netlist::GateId>& fanins() const { return fanins_; }

  // Level of each instruction as an index into levels() (i.e. level-1 in
  // the 1-based levelization). The cone walker buckets dirty instructions
  // by this.
  const std::vector<std::uint32_t>& instr_level() const {
    return instr_level_;
  }
  // Instruction index writing gate g, or kNoInstr for sources/constants.
  static constexpr std::uint32_t kNoInstr = ~0u;
  const std::vector<std::uint32_t>& instr_of_gate() const {
    return instr_of_gate_;
  }

  // Cached id lists (creation order, matching Netlist::InputIds/DffIds).
  const std::vector<netlist::GateId>& input_ids() const { return input_ids_; }
  const std::vector<netlist::GateId>& dff_ids() const { return dff_ids_; }
  // D-pin fanin of dff_ids()[k].
  const std::vector<netlist::GateId>& dff_d() const { return dff_d_; }
  // Inputs and DFFs — the gates whose known-planes decide two-valued
  // eligibility (constants are known from Reset and never revert).
  const std::vector<netlist::GateId>& source_ids() const {
    return source_ids_;
  }

  // Combinational fanout adjacency: instruction indices reading gate g's
  // output, for g in [0, num_gates). CSR layout.
  const std::vector<std::uint32_t>& fanout_begin() const {
    return fanout_begin_;
  }
  const std::vector<std::uint32_t>& fanout_instrs() const {
    return fanout_instrs_;
  }

  // Per-gate kind snapshot (avoids touching the Netlist on the hot path).
  const std::vector<netlist::GateKind>& kind() const { return kind_; }
  // 1 for combinational gates (kBuf..kMux2).
  const std::vector<std::uint8_t>& is_comb() const { return is_comb_; }

  std::uint64_t structural_hash() const { return structural_hash_; }

 private:
  CompiledNetlist() = default;

  std::size_t num_gates_ = 0;
  std::vector<Level> levels_;
  std::vector<Op> op_;
  std::vector<netlist::GateId> out_;
  std::vector<std::uint32_t> fanin_begin_;
  std::vector<std::uint32_t> fanin_count_;
  std::vector<netlist::GateId> fanins_;
  std::vector<std::uint32_t> instr_level_;
  std::vector<std::uint32_t> instr_of_gate_;
  std::vector<netlist::GateId> input_ids_;
  std::vector<netlist::GateId> dff_ids_;
  std::vector<netlist::GateId> dff_d_;
  std::vector<netlist::GateId> source_ids_;
  std::vector<std::uint32_t> fanout_begin_;
  std::vector<std::uint32_t> fanout_instrs_;
  std::vector<netlist::GateKind> kind_;
  std::vector<std::uint8_t> is_comb_;
  std::uint64_t structural_hash_ = 0;
};

// Cone-restricted step entry over a compiled program: a reusable dirty
// worklist that visits only the instructions inside the fan-out cone of a
// set of seed gates, in level order. The differential fault engine seeds it
// at the fault sites (and at sequential state that diverged from the golden
// machine) each cycle, evaluates the drained instructions against the
// cached golden planes, and lets divergence auto-extend the cone:
//
//   walker.SeedReadersOf(diverged_source);     // phase A: sources
//   walker.SeedInstr(forced_instr);            // fault sites
//   walker.Drain([&](std::uint32_t i) {        // level-ascending sweep
//     ... evaluate instruction i ...
//     return output_diverged_from_golden;      // true -> readers seeded
//   });
//
// Correctness of the restriction relies on levelization: a reader of a
// combinational output always sits at a strictly higher level, so Drain
// never revisits a processed bucket, and a gate outside the cone (no
// divergent fanin, no force) provably equals the golden machine.
// Not thread-safe; one walker per shard.
class ConeWalker {
 public:
  explicit ConeWalker(const CompiledNetlist& prog)
      : prog_(&prog),
        dirty_(prog.num_instructions(), 0),
        buckets_(prog.levels().size()) {}

  // Marks every instruction reading gate g's output.
  void SeedReadersOf(netlist::GateId g) {
    const auto& begin = prog_->fanout_begin();
    const auto& instrs = prog_->fanout_instrs();
    for (std::uint32_t k = begin[g]; k < begin[g + 1]; ++k) {
      SeedInstr(instrs[k]);
    }
  }

  void SeedInstr(std::uint32_t i) {
    if (dirty_[i]) return;
    dirty_[i] = 1;
    buckets_[prog_->instr_level()[i]].push_back(i);
    ++pending_;
  }

  bool pending() const { return pending_ != 0; }

  // Instructions processed by the last Drain (the cycle's cone size).
  std::uint64_t drained() const { return drained_; }

  // Processes every dirty instruction in ascending level order; fn(i)
  // returns true when instruction i's output diverged, which seeds its
  // readers (all at strictly higher levels). Leaves the walker empty.
  template <typename Fn>
  void Drain(Fn&& fn) {
    drained_ = 0;
    for (std::size_t lvl = 0; lvl < buckets_.size(); ++lvl) {
      std::vector<std::uint32_t>& bucket = buckets_[lvl];
      // SeedInstr appends only to higher-level buckets during the sweep,
      // so indexing (not iterators) is required only for hygiene here.
      for (std::size_t k = 0; k < bucket.size(); ++k) {
        const std::uint32_t i = bucket[k];
        dirty_[i] = 0;
        --pending_;
        ++drained_;
        if (fn(i)) SeedReadersOf(prog_->out()[i]);
      }
      bucket.clear();
      if (pending_ == 0) break;
    }
  }

 private:
  const CompiledNetlist* prog_;
  std::vector<std::uint8_t> dirty_;
  std::vector<std::vector<std::uint32_t>> buckets_;  // per level
  std::size_t pending_ = 0;
  std::uint64_t drained_ = 0;
};

}  // namespace pfd::logicsim
