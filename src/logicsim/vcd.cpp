#include "logicsim/vcd.hpp"

#include <sstream>

namespace pfd::logicsim {

void VcdWriter::AddSignal(netlist::GateId gate, std::string name) {
  PFD_CHECK_MSG(samples_.empty(), "add signals before sampling");
  signals_.push_back({{gate}, std::move(name), IdFor(signals_.size())});
}

void VcdWriter::AddBus(const std::vector<netlist::GateId>& bits,
                       std::string name) {
  PFD_CHECK_MSG(samples_.empty(), "add signals before sampling");
  PFD_CHECK_MSG(!bits.empty(), "empty bus");
  signals_.push_back({bits, std::move(name), IdFor(signals_.size())});
}

std::string VcdWriter::IdFor(std::size_t index) {
  // Printable VCD identifiers: base-94 over '!'..'~'.
  std::string id;
  do {
    id += static_cast<char>('!' + index % 94);
    index /= 94;
  } while (index != 0);
  return id;
}

std::string VcdWriter::ValueOf(const Signal& s) const {
  std::string v;
  // VCD vectors print MSB first.
  for (auto it = s.bits.rbegin(); it != s.bits.rend(); ++it) {
    switch (sim_->ValueLane(*it, 0)) {
      case Trit::kZero: v += '0'; break;
      case Trit::kOne: v += '1'; break;
      case Trit::kX: v += 'x'; break;
    }
  }
  return v;
}

void VcdWriter::Sample() {
  std::vector<std::string> row;
  row.reserve(signals_.size());
  for (const Signal& s : signals_) row.push_back(ValueOf(s));
  samples_.push_back(std::move(row));
}

std::string VcdWriter::Render() const {
  std::ostringstream os;
  os << "$date pfd $end\n$version pfd logicsim $end\n"
     << "$timescale 1 ns $end\n$scope module system $end\n";
  for (const Signal& s : signals_) {
    os << "$var wire " << s.bits.size() << ' ' << s.id << ' ' << s.name
       << " $end\n";
  }
  os << "$upscope $end\n$enddefinitions $end\n";
  std::vector<std::string> last(signals_.size());
  for (std::size_t t = 0; t < samples_.size(); ++t) {
    bool stamped = false;
    for (std::size_t s = 0; s < signals_.size(); ++s) {
      if (samples_[t][s] == last[s]) continue;
      if (!stamped) {
        os << '#' << t << '\n';
        stamped = true;
      }
      if (signals_[s].bits.size() == 1) {
        os << samples_[t][s] << signals_[s].id << '\n';
      } else {
        os << 'b' << samples_[t][s] << ' ' << signals_[s].id << '\n';
      }
      last[s] = samples_[t][s];
    }
  }
  os << '#' << samples_.size() << '\n';
  return os.str();
}

}  // namespace pfd::logicsim
