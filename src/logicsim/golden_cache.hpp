// Process-wide memoization of fault-free ("golden") reference artefacts.
//
// Every engine in the flow re-derives the same fault-free machine over and
// over: pipeline step 3 extracts the golden control trace, the serial fault
// engine simulates a golden response pass per campaign, SFR grading runs a
// fault-free Monte Carlo power baseline, and the benches repeat all of the
// above per iteration. The inputs are identical each time — same netlist,
// same stimulus, same cycle count — and the engines are deterministic, so
// the outputs are bit-identical. This cache keys those artefacts by
//
//   GoldenKey{netlist hash, stimulus hash, cycles}
//
// where the netlist component is netlist::Netlist::StructuralHash() and the
// stimulus component is a caller-built Fnv1a digest of *everything else
// that feeds the run* (pattern seed and count, reset protocol, observed
// nets, pinned inputs, Monte Carlo configuration, ... — each consumer
// documents its digest at the call site, and starts it with a distinct
// domain tag so different consumers can never collide). Any structural
// edit, pattern change, or configuration change lands on a new key; stale
// entries are never returned, only evicted.
//
// Entries are immutable shared_ptrs, so a hit is a pointer copy under one
// mutex acquisition. Consumers must only insert results of *clean* runs
// (no guard trip, no failed unit): a partial artefact under a complete
// key would poison every later lookup.
//
// Consumers must keep their own request-level accounting (obs counters,
// metrics) identical on hit and miss; only the simulation itself is
// skipped. The cache bumps
// logicsim.golden_cache.{hits,misses,insertions,evictions} when the obs
// registry is enabled.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "base/logic.hpp"

namespace pfd::logicsim {

struct GoldenKey {
  std::uint64_t netlist_hash = 0;
  std::uint64_t stimulus_hash = 0;
  std::uint64_t cycles = 0;

  friend bool operator==(const GoldenKey&, const GoldenKey&) = default;
};

// One memoized fault-free artefact. The cache is a dumb content-addressed
// store: `trits` carries ternary traces (strobed responses, control-line
// rows), `scalars`/`counts` carry numeric summaries (the grading power
// baseline). Each consumer owns the layout of the fields it uses.
struct GoldenEntry {
  std::vector<Trit> trits;
  std::vector<double> scalars;
  std::vector<std::uint64_t> counts;
};

// Streaming FNV-1a (64-bit) for building stimulus digests. Every field is
// self-delimiting — Add feeds a fixed 8-byte little-endian block and
// AddBytes length-prefixes its payload — so no two distinct *sequences* of
// Add/AddBytes calls produce the same byte stream (a raw concatenation
// would make AddBytes("ab")+AddBytes("c") collide with
// AddBytes("a")+AddBytes("bc"), and a colliding stimulus digest serves a
// wrong golden trace). Callers hashing variable-size containers must still
// prefix their element count, as the call sites document.
class Fnv1a {
 public:
  Fnv1a& Add(std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      hash_ ^= (v >> (8 * byte)) & 0xFF;
      hash_ *= 0x100000001b3ULL;
    }
    return *this;
  }
  Fnv1a& AddBytes(const char* data, std::size_t size) {
    Add(static_cast<std::uint64_t>(size));
    for (std::size_t i = 0; i < size; ++i) {
      hash_ ^= static_cast<unsigned char>(data[i]);
      hash_ *= 0x100000001b3ULL;
    }
    return *this;
  }
  std::uint64_t hash() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

// Byte-sized LRU with per-design partitions. Entries are grouped by their
// netlist hash (one partition per design); when the payload bytes exceed
// the capacity, the least-recently-used entry of the *largest* partition is
// evicted (ties broken toward the smaller hash) — a long multi-design
// process (pfdd-style servers, the benches) cannot let one design's churn
// wash out every other design's working set. A Find refreshes recency; the
// just-inserted entry always survives, even when it alone exceeds the
// capacity. Eviction order is a pure function of the call sequence, so
// tests and reports can pin it.
class GoldenTraceCache {
 public:
  // Default payload capacity. The biggest single artefact in the flow (a
  // differential golden plane trace of a large design) is tens of MiB, so
  // this comfortably holds several designs' working sets while bounding a
  // pathological many-stimulus churn.
  static constexpr std::size_t kDefaultCapacityBytes =
      std::size_t{256} << 20;  // 256 MiB

  static GoldenTraceCache& Global();

  // Returns the entry for `key`, or nullptr on miss. A hit marks the entry
  // most-recently-used in its design partition.
  std::shared_ptr<const GoldenEntry> Find(const GoldenKey& key);
  // Registers `entry` under `key` and returns the resident entry: `entry`
  // itself when it was inserted, or the incumbent when another producer won
  // the first-insert race (racing producers computed identical artefacts,
  // so callers converging on the returned pointer all see one object). A
  // dropped insert bumps logicsim.golden_cache.dropped_inserts, never
  // .insertions. Evictions bump logicsim.golden_cache.evictions. Only call
  // with artefacts of clean, untripped runs.
  std::shared_ptr<const GoldenEntry> Insert(
      const GoldenKey& key, std::shared_ptr<const GoldenEntry> entry);

  std::size_t size() const;
  // Total payload bytes currently resident / the eviction threshold.
  std::size_t bytes() const;
  std::size_t capacity_bytes() const;
  // Re-sizes the cache (pfdtool --golden-cache-bytes), evicting immediately
  // when the resident payload exceeds the new capacity. 0 is allowed: every
  // insert then evicts all but the newest entry.
  void SetCapacityBytes(std::size_t capacity);
  // Drops every entry (tests; long-lived processes cycling many netlists).
  void Clear();

 private:
  struct KeyHash {
    std::size_t operator()(const GoldenKey& k) const {
      Fnv1a h;
      h.Add(k.netlist_hash).Add(k.stimulus_hash).Add(k.cycles);
      return static_cast<std::size_t>(h.hash());
    }
  };
  // One per netlist hash: LRU list (front = coldest) plus the partition's
  // resident payload bytes. std::map keeps partition iteration ordered by
  // hash, which is what makes the eviction tie-break deterministic.
  struct Partition {
    std::list<GoldenKey> order;
    std::size_t bytes = 0;
  };
  struct Node {
    std::shared_ptr<const GoldenEntry> entry;
    std::size_t bytes = 0;
    std::list<GoldenKey>::iterator pos;  // into its partition's order list
  };

  // Evicts until bytes() <= capacity (or only `keep` remains), appending
  // the victims to `evicted`. Caller holds mu_; `keep` may be null.
  void EvictLocked(const GoldenKey* keep, std::vector<GoldenKey>& evicted);

  mutable std::mutex mu_;
  std::unordered_map<GoldenKey, Node, KeyHash> entries_;
  std::map<std::uint64_t, Partition> partitions_;
  std::size_t capacity_bytes_ = kDefaultCapacityBytes;
  std::size_t total_bytes_ = 0;
};

}  // namespace pfd::logicsim
