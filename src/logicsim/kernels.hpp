// Width- and backend-dispatched combinational settle kernels.
//
// The Simulator's hot loops — the zero-delay three-valued and two-valued
// level sweeps — live here as free functions over a raw view (Ctx) of the
// simulator's SoA planes, selected once per simulator through a function
// table:
//
//   const Table& t = GetTable(simd::Active(), lane_words);
//   t.settle3(ctx);          // or settle3_forced / settle2 / settle2_forced
//
// Each table entry is specialized on the lane-word count NW ∈ {1, 4, 8}
// (64 / 256 / 512 lanes) and on the SIMD backend. The backend variants are
// thin `__attribute__((target("avx2"/"avx512f")))` wrappers around one
// shared always-inline core, so a single default-flags translation unit
// carries all of them: no per-file -m flags, hence no comdat/ODR hazard of
// a vector-encoded inline helper leaking into scalar-only call paths. The
// wrappers execute extended instructions only when called, and GetTable
// refuses backends that simd::Available() rejects.
//
// Semantics are identical across every {backend, NW} pair — the cores
// bottom out in the Word3 operators of base/logic.hpp applied per lane
// word — so kernel selection can never change simulation results, only
// throughput. The 64-lane scalar entry reproduces the pre-widening settle
// loops bit for bit (level X watermarks, guard-probe cadence, planted
// xcheck.mutate.skip_level bug included).
#pragma once

#include <cstddef>
#include <cstdint>

#include "base/logic.hpp"
#include "base/simd.hpp"
#include "logicsim/compiled.hpp"

namespace pfd::guard {
class Checker;
}  // namespace pfd::guard

namespace pfd::logicsim::kern {

// One registered fanin-pin force. Masks are LaneMasks: words beyond the
// owning simulator's lane width are never read.
struct PinForce {
  netlist::GateId gate = 0;
  std::uint32_t pin = 0;
  LaneMask sa0;
  LaneMask sa1;
};

// Non-owning view of the state one settle pass touches. All planes are
// lane-word-strided SoA: gate g's word w sits at [g * NW + w].
struct Ctx {
  const CompiledNetlist* prog = nullptr;
  std::uint64_t* val = nullptr;
  std::uint64_t* known = nullptr;
  const std::uint64_t* out_sa0 = nullptr;  // output-force planes, NW-strided
  const std::uint64_t* out_sa1 = nullptr;
  const PinForce* pin_forces = nullptr;
  std::size_t num_pin_forces = 0;
  const std::uint8_t* has_pin_force = nullptr;  // per gate
  const std::uint8_t* has_out_force = nullptr;  // per gate
  // Per flattened-fanin-slot index into pin_forces (-1 = unforced), so a
  // forced read costs one load instead of a scan over every registered
  // force — the scan made wide parallel shards O(faults^2) per settle.
  const std::int32_t* pin_force_slot = nullptr;
  // Per-level "any X" watermark, OR-folded across lane words (three-valued
  // settles only).
  std::uint64_t* level_x = nullptr;
  // Polled between levels; non-null only when a guard is attached.
  const guard::Checker* guard_probe = nullptr;
  // Planted xcheck.mutate.skip_level bug (two-valued settles only).
  bool skip_last_level = false;
};

using SettleFn = void (*)(Ctx&);

struct Table {
  SettleFn settle3 = nullptr;         // three-valued, no forces registered
  SettleFn settle3_forced = nullptr;  // three-valued, forces active
  SettleFn settle2 = nullptr;         // two-valued fast path, no forces
  SettleFn settle2_forced = nullptr;  // two-valued, forces active
};

// The kernel table for (backend, lane words). `words` must be 1, 4 or 8
// and `backend` must be simd::Available(); throws pfd::Error otherwise.
const Table& GetTable(simd::Backend backend, int words);

// Out-of-line guard poll: throws guard::Tripped when `c` has tripped.
// Kernels call this only when Ctx::guard_probe is non-null.
void ProbeGuard(const guard::Checker* c);

}  // namespace pfd::logicsim::kern
