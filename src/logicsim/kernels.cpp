#include "logicsim/kernels.hpp"

#include "base/error.hpp"
#include "guard/guard.hpp"

// All kernel variants live in this one default-flags TU. The AVX2/AVX-512
// bodies get their ISA through per-function target attributes; the shared
// cores below are always_inline so they are compiled *inside* each wrapper
// with the wrapper's ISA. GCC permits always-inlining a default-target
// callee into an extended-target caller (callee ISA ⊆ caller ISA); the
// reverse direction never happens because nothing here calls a wrapper.
#define PFD_KERN_INLINE [[gnu::always_inline]] inline

// The value types below are GCC vector extensions; in the default-target
// (scalar) wrappers they lower to plain word ops and never escape an
// inlined frame, so the vector-ABI warning does not apply.
#pragma GCC diagnostic ignored "-Wpsabi"

namespace pfd::logicsim::kern {
namespace {

using netlist::GateId;

// NW lane words as one GCC extension vector, so the AVX2/AVX-512 wrappers
// compile each ternary operator to whole-register instructions. Writing the
// per-word loops as scalar code and hoping for SLP vectorization does not
// work: GCC leaves the NW = 4/8 bodies almost entirely scalar. `aligned(8)`
// because the planes are ordinary uint64_t storage with no wide-vector
// alignment guarantee; may_alias because we view that storage through
// this type.
template <int NW>
using LaneVec __attribute__((vector_size(NW * 8), aligned(8), may_alias)) =
    std::uint64_t;

template <int NW>
PFD_KERN_INLINE LaneVec<NW> LoadV(const std::uint64_t* p) {
  return *reinterpret_cast<const LaneVec<NW>*>(p);
}

template <int NW>
PFD_KERN_INLINE void StoreV(std::uint64_t* p, LaneVec<NW> v) {
  *reinterpret_cast<LaneVec<NW>*>(p) = v;
}

// NW lane words of ternary state for one gate.
template <int NW>
struct W {
  LaneVec<NW> val;
  LaneVec<NW> known;
};

template <int NW>
PFD_KERN_INLINE W<NW> LoadW(const Ctx& c, GateId g) {
  W<NW> w;
  w.val = LoadV<NW>(c.val + g * NW);
  w.known = LoadV<NW>(c.known + g * NW);
  return w;
}

template <int NW>
PFD_KERN_INLINE void StoreW(const Ctx& c, GateId g, const W<NW>& w) {
  StoreV<NW>(c.val + g * NW, w.val);
  StoreV<NW>(c.known + g * NW, w.known);
}

// The base/logic.hpp ternary operators, applied per lane word across the
// whole vector. The formulas mirror Not3/And3/Or3/Xor3/Mux3 exactly (every
// one is pure bitwise, so per-word lockstep application is the definition
// of the wide machine); logic_test and the width/backend equivalence suite
// pin the agreement.
template <int NW>
PFD_KERN_INLINE W<NW> Not3W(const W<NW>& a) {
  return {a.known & ~a.val, a.known};
}

template <int NW>
PFD_KERN_INLINE W<NW> And3W(const W<NW>& a, const W<NW>& b) {
  const LaneVec<NW> known =
      (a.known & b.known) | (a.known & ~a.val) | (b.known & ~b.val);
  return {a.val & b.val, known};
}

template <int NW>
PFD_KERN_INLINE W<NW> Or3W(const W<NW>& a, const W<NW>& b) {
  const LaneVec<NW> known = (a.known & b.known) | a.val | b.val;
  return {a.val | b.val, known};
}

template <int NW>
PFD_KERN_INLINE W<NW> Xor3W(const W<NW>& a, const W<NW>& b) {
  const LaneVec<NW> known = a.known & b.known;
  return {(a.val ^ b.val) & known, known};
}

template <int NW>
PFD_KERN_INLINE W<NW> Mux3W(const W<NW>& sel, const W<NW>& a, const W<NW>& b) {
  const LaneVec<NW> pick_a = sel.known & ~sel.val;
  const LaneVec<NW> pick_b = sel.known & sel.val;
  const LaneVec<NW> agree =
      ~sel.known & a.known & b.known & ~(a.val ^ b.val);
  const LaneVec<NW> known =
      (pick_a & a.known) | (pick_b & b.known) | agree;
  const LaneVec<NW> val =
      ((pick_a & a.val) | (pick_b & b.val) | (agree & a.val)) & known;
  return {val, known};
}

// Fanin read; the pin-forced variant resolves the (at most one, merged at
// ForcePin) force on this fanin slot through the O(1) slot index (mirrors
// Simulator::ApplyForce lane-word-wise).
template <int NW, bool kPinForced>
PFD_KERN_INLINE W<NW> Read3(const Ctx& c, std::uint32_t slot, GateId src) {
  W<NW> w = LoadW<NW>(c, src);
  if constexpr (kPinForced) {
    const std::int32_t fi = c.pin_force_slot[slot];
    if (fi >= 0) {
      const PinForce& pf = c.pin_forces[fi];
      const LaneVec<NW> sa0 = LoadV<NW>(pf.sa0.w.data());
      const LaneVec<NW> sa1 = LoadV<NW>(pf.sa1.w.data());
      w.known |= sa0 | sa1;
      w.val = (w.val | sa1) & ~sa0;
    }
  } else {
    (void)slot;
  }
  return w;
}

template <int NW, bool kPinForced>
PFD_KERN_INLINE W<NW> Eval3(const Ctx& c, std::uint32_t i) {
  const CompiledNetlist& p = *c.prog;
  const std::uint32_t fb = p.fanin_begin()[i];
  const GateId* f = p.fanins().data() + fb;
#define PFD_RD3(pin, src) (Read3<NW, kPinForced>(c, fb + (pin), (src)))
  switch (p.op()[i]) {
    case Op::kBuf: return PFD_RD3(0, f[0]);
    case Op::kNot: return Not3W(PFD_RD3(0, f[0]));
    case Op::kAnd2: return And3W(PFD_RD3(0, f[0]), PFD_RD3(1, f[1]));
    case Op::kOr2: return Or3W(PFD_RD3(0, f[0]), PFD_RD3(1, f[1]));
    case Op::kNand2: return Not3W(And3W(PFD_RD3(0, f[0]), PFD_RD3(1, f[1])));
    case Op::kNor2: return Not3W(Or3W(PFD_RD3(0, f[0]), PFD_RD3(1, f[1])));
    case Op::kXor2: return Xor3W(PFD_RD3(0, f[0]), PFD_RD3(1, f[1]));
    case Op::kXnor2: return Not3W(Xor3W(PFD_RD3(0, f[0]), PFD_RD3(1, f[1])));
    case Op::kMux2:
      return Mux3W(PFD_RD3(0, f[0]), PFD_RD3(1, f[1]), PFD_RD3(2, f[2]));
    case Op::kAndN:
    case Op::kNandN: {
      W<NW> w = PFD_RD3(0, f[0]);
      const std::uint32_t count = p.fanin_count()[i];
      for (std::uint32_t k = 1; k < count; ++k) {
        w = And3W(w, PFD_RD3(k, f[k]));
      }
      return p.op()[i] == Op::kNandN ? Not3W(w) : w;
    }
    case Op::kOrN:
    case Op::kNorN: {
      W<NW> w = PFD_RD3(0, f[0]);
      const std::uint32_t count = p.fanin_count()[i];
      for (std::uint32_t k = 1; k < count; ++k) {
        w = Or3W(w, PFD_RD3(k, f[k]));
      }
      return p.op()[i] == Op::kNorN ? Not3W(w) : w;
    }
  }
#undef PFD_RD3
  return W<NW>{};  // unreachable op: all-X
}

// Two-valued: val planes only.
template <int NW>
struct V {
  LaneVec<NW> val;
};

template <int NW, bool kPinForced>
PFD_KERN_INLINE V<NW> Read2(const Ctx& c, std::uint32_t slot, GateId src) {
  V<NW> v{LoadV<NW>(c.val + src * NW)};
  if constexpr (kPinForced) {
    const std::int32_t fi = c.pin_force_slot[slot];
    if (fi >= 0) {
      const PinForce& pf = c.pin_forces[fi];
      v.val = (v.val | LoadV<NW>(pf.sa1.w.data())) &
              ~LoadV<NW>(pf.sa0.w.data());
    }
  } else {
    (void)slot;
  }
  return v;
}

template <int NW, bool kPinForced>
PFD_KERN_INLINE V<NW> Eval2(const Ctx& c, std::uint32_t i) {
  const CompiledNetlist& p = *c.prog;
  const std::uint32_t fb = p.fanin_begin()[i];
  const GateId* f = p.fanins().data() + fb;
#define PFD_RD2(pin, src) (Read2<NW, kPinForced>(c, fb + (pin), (src)))
  switch (p.op()[i]) {
    case Op::kBuf: return PFD_RD2(0, f[0]);
    case Op::kNot: return {~PFD_RD2(0, f[0]).val};
    case Op::kAnd2: return {PFD_RD2(0, f[0]).val & PFD_RD2(1, f[1]).val};
    case Op::kOr2: return {PFD_RD2(0, f[0]).val | PFD_RD2(1, f[1]).val};
    case Op::kNand2: return {~(PFD_RD2(0, f[0]).val & PFD_RD2(1, f[1]).val)};
    case Op::kNor2: return {~(PFD_RD2(0, f[0]).val | PFD_RD2(1, f[1]).val)};
    case Op::kXor2: return {PFD_RD2(0, f[0]).val ^ PFD_RD2(1, f[1]).val};
    case Op::kXnor2: return {~(PFD_RD2(0, f[0]).val ^ PFD_RD2(1, f[1]).val)};
    case Op::kMux2: {
      const LaneVec<NW> s = PFD_RD2(0, f[0]).val;
      const LaneVec<NW> a = PFD_RD2(1, f[1]).val;
      const LaneVec<NW> b = PFD_RD2(2, f[2]).val;
      return {(a & ~s) | (b & s)};
    }
    case Op::kAndN:
    case Op::kNandN: {
      V<NW> acc = PFD_RD2(0, f[0]);
      const std::uint32_t count = p.fanin_count()[i];
      for (std::uint32_t k = 1; k < count; ++k) acc.val &= PFD_RD2(k, f[k]).val;
      if (p.op()[i] == Op::kNandN) acc.val = ~acc.val;
      return acc;
    }
    case Op::kOrN:
    case Op::kNorN: {
      V<NW> acc = PFD_RD2(0, f[0]);
      const std::uint32_t count = p.fanin_count()[i];
      for (std::uint32_t k = 1; k < count; ++k) acc.val |= PFD_RD2(k, f[k]).val;
      if (p.op()[i] == Op::kNorN) acc.val = ~acc.val;
      return acc;
    }
  }
#undef PFD_RD2
  return V<NW>{};  // unreachable op
}

// Three-valued level sweep. Bit-for-bit the pre-widening
// Simulator::SettleThreeValued at NW == 1.
template <int NW, bool kForces>
PFD_KERN_INLINE void Settle3Core(Ctx& c) {
  const CompiledNetlist& p = *c.prog;
  const auto& levels = p.levels();
  const GateId* out = p.out().data();
  for (std::size_t li = 0; li < levels.size(); ++li) {
    std::uint64_t xmask = 0;
    const std::uint32_t end = levels[li].end;
    for (std::uint32_t i = levels[li].begin; i < end; ++i) {
      const GateId g = out[i];
      W<NW> w;
      if (kForces && c.has_pin_force[g]) {
        w = Eval3<NW, true>(c, i);
      } else {
        w = Eval3<NW, false>(c, i);
      }
      if constexpr (kForces) {
        if (c.has_out_force[g]) {
          const LaneVec<NW> sa0 = LoadV<NW>(c.out_sa0 + g * NW);
          const LaneVec<NW> sa1 = LoadV<NW>(c.out_sa1 + g * NW);
          w.known |= sa0 | sa1;
          w.val = (w.val | sa1) & ~sa0;
        }
      }
      StoreW<NW>(c, g, w);
      for (int j = 0; j < NW; ++j) xmask |= ~w.known[j];
    }
    c.level_x[li] = xmask;
    if (c.guard_probe != nullptr) ProbeGuard(c.guard_probe);
  }
}

// Two-valued level sweep (val planes only). Bit-for-bit the pre-widening
// Simulator::SettleTwoValued at NW == 1, planted skip_level bug included.
template <int NW, bool kForces>
PFD_KERN_INLINE void Settle2Core(Ctx& c) {
  const CompiledNetlist& p = *c.prog;
  const auto& levels = p.levels();
  const GateId* out = p.out().data();
  const std::size_t num_levels =
      c.skip_last_level && !levels.empty() ? levels.size() - 1 : levels.size();
  for (std::size_t li = 0; li < num_levels; ++li) {
    const std::uint32_t end = levels[li].end;
    for (std::uint32_t i = levels[li].begin; i < end; ++i) {
      const GateId g = out[i];
      V<NW> v;
      if (kForces && c.has_pin_force[g]) {
        v = Eval2<NW, true>(c, i);
      } else {
        v = Eval2<NW, false>(c, i);
      }
      if constexpr (kForces) {
        if (c.has_out_force[g]) {
          v.val = (v.val | LoadV<NW>(c.out_sa1 + g * NW)) &
                  ~LoadV<NW>(c.out_sa0 + g * NW);
        }
      }
      StoreV<NW>(c.val + g * NW, v.val);
    }
    if (c.guard_probe != nullptr) ProbeGuard(c.guard_probe);
  }
}

// One settle-function set per backend. TARGET carries the ISA; the cores
// above inline into each wrapper and are vectorized (or not) there.
#define PFD_DEFINE_KERNELS(ARCH, TARGET)                                   \
  TARGET void S3_##ARCH##_w1(Ctx& c) { Settle3Core<1, false>(c); }         \
  TARGET void S3f_##ARCH##_w1(Ctx& c) { Settle3Core<1, true>(c); }         \
  TARGET void S2_##ARCH##_w1(Ctx& c) { Settle2Core<1, false>(c); }         \
  TARGET void S2f_##ARCH##_w1(Ctx& c) { Settle2Core<1, true>(c); }         \
  TARGET void S3_##ARCH##_w4(Ctx& c) { Settle3Core<4, false>(c); }         \
  TARGET void S3f_##ARCH##_w4(Ctx& c) { Settle3Core<4, true>(c); }         \
  TARGET void S2_##ARCH##_w4(Ctx& c) { Settle2Core<4, false>(c); }         \
  TARGET void S2f_##ARCH##_w4(Ctx& c) { Settle2Core<4, true>(c); }         \
  TARGET void S3_##ARCH##_w8(Ctx& c) { Settle3Core<8, false>(c); }         \
  TARGET void S3f_##ARCH##_w8(Ctx& c) { Settle3Core<8, true>(c); }         \
  TARGET void S2_##ARCH##_w8(Ctx& c) { Settle2Core<8, false>(c); }         \
  TARGET void S2f_##ARCH##_w8(Ctx& c) { Settle2Core<8, true>(c); }         \
  const Table kTables_##ARCH[3] = {                                        \
      {&S3_##ARCH##_w1, &S3f_##ARCH##_w1, &S2_##ARCH##_w1,                 \
       &S2f_##ARCH##_w1},                                                  \
      {&S3_##ARCH##_w4, &S3f_##ARCH##_w4, &S2_##ARCH##_w4,                 \
       &S2f_##ARCH##_w4},                                                  \
      {&S3_##ARCH##_w8, &S3f_##ARCH##_w8, &S2_##ARCH##_w8,                 \
       &S2f_##ARCH##_w8}};

PFD_DEFINE_KERNELS(scalar, )

#if defined(__GNUC__) && defined(__x86_64__)
#define PFD_TARGET_AVX2 __attribute__((target("avx2")))
#define PFD_TARGET_AVX512 __attribute__((target("avx512f")))
PFD_DEFINE_KERNELS(avx2, PFD_TARGET_AVX2)
PFD_DEFINE_KERNELS(avx512, PFD_TARGET_AVX512)
#endif

}  // namespace

const Table& GetTable(simd::Backend backend, int words) {
  PFD_CHECK_MSG(words == 1 || words == 4 || words == 8,
                "lane words must be 1, 4 or 8");
  if (!simd::Available(backend)) {
    throw Error(std::string("SIMD backend '") + simd::BackendName(backend) +
                "' is not available on this machine");
  }
  const int wi = words == 1 ? 0 : (words == 4 ? 1 : 2);
  switch (backend) {
    case simd::Backend::kScalar: return kTables_scalar[wi];
#if defined(__GNUC__) && defined(__x86_64__)
    case simd::Backend::kAvx2: return kTables_avx2[wi];
    case simd::Backend::kAvx512: return kTables_avx512[wi];
#else
    default: break;
#endif
  }
  return kTables_scalar[wi];
}

void ProbeGuard(const guard::Checker* c) {
  if (c->tripped()) throw guard::Tripped{c->status()};
}

}  // namespace pfd::logicsim::kern
