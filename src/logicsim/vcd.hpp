// VCD (Value Change Dump) waveform export.
//
// Attaches to a Simulator, samples a chosen set of nets once per clock
// cycle (lane 0), and renders an IEEE-1364-style VCD text stream that any
// waveform viewer opens. Used by the examples for fault debugging; the
// emitted text is also asserted on directly in tests.
#pragma once

#include <string>
#include <vector>

#include "logicsim/simulator.hpp"

namespace pfd::logicsim {

class VcdWriter {
 public:
  // Timescale is one clock cycle per VCD time unit.
  explicit VcdWriter(const Simulator& sim) : sim_(&sim) {}

  // Adds a scalar net to the dump (order defines the VCD variable order).
  void AddSignal(netlist::GateId gate, std::string name);
  // Adds a multi-bit bus (LSB first) dumped as one vector variable.
  void AddBus(const std::vector<netlist::GateId>& bits, std::string name);

  // Records the current simulator values; call once per Step(), in the
  // simulated lane of interest (lane 0).
  void Sample();

  // Renders the complete VCD document.
  std::string Render() const;

 private:
  struct Signal {
    std::vector<netlist::GateId> bits;  // 1 bit = scalar
    std::string name;
    std::string id;  // VCD short identifier
  };

  static std::string IdFor(std::size_t index);
  std::string ValueOf(const Signal& s) const;

  const Simulator* sim_;
  std::vector<Signal> signals_;
  // samples_[t][s] = value string of signal s at time t.
  std::vector<std::vector<std::string>> samples_;
};

}  // namespace pfd::logicsim
